"""T-tree maintenance under interval insertions and deletions.

The static :class:`repro.index.ttree.TTree` bulk-loads the turning points
of a covering table.  Under updates, inserting interval ``[s, e]`` is a
+1 range update of ``PMA`` over ``[s, e]`` — in delta form simply
``delta[s] += 1`` and ``delta[e+1] -= 1``; deletion is the inverse.

The structure keeps the delta map and lazily recompiles the prefix-summed
turning points on the first query after a batch of updates:

* update: O(1);
* first query after updates: O(k log k) for k distinct delta positions;
* subsequent queries: O(log k) binary search.

This write-batched behaviour matches how optimizer statistics are
actually maintained (bulk document loads, then query bursts).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable

from repro.core.element import Element
from repro.core.errors import ReproError
from repro.core.nodeset import NodeSet


class DynamicTTree:
    """Stabbing counts over a dynamic interval multiset."""

    def __init__(self, elements: Iterable[Element] = ()) -> None:
        self._deltas: dict[int, int] = {}
        self._size = 0
        self._positions: list[int] = []
        self._values: list[int] = []
        self._dirty = False
        for element in elements:
            self.insert(element)

    def __len__(self) -> int:
        return self._size

    def _shift(self, position: int, change: int) -> None:
        value = self._deltas.get(position, 0) + change
        if value:
            self._deltas[position] = value
        else:
            self._deltas.pop(position, None)
        self._dirty = True

    def insert(self, element: Element) -> None:
        """Add interval ``[element.start, element.end]`` (O(1))."""
        self._shift(element.start, +1)
        self._shift(element.end + 1, -1)
        self._size += 1

    def delete(self, element: Element) -> None:
        """Remove a previously inserted interval (O(1)).

        Deleting an interval that was never inserted leaves the delta map
        inconsistent; it is detected at recompile time when a prefix sum
        turns negative.
        """
        if self._size == 0:
            raise ReproError("delete from an empty T-tree")
        self._shift(element.start, -1)
        self._shift(element.end + 1, +1)
        self._size -= 1

    def _recompile(self) -> None:
        self._positions = sorted(self._deltas)
        self._values = []
        running = 0
        for position in self._positions:
            running += self._deltas[position]
            if running < 0:
                raise ReproError(
                    "covering table went negative: an interval was "
                    "deleted that was never inserted"
                )
            self._values.append(running)
        if self._positions and self._values[-1] != 0:
            raise ReproError("covering table does not close to zero")
        self._dirty = False

    def count(self, position: int) -> int:
        """``PMA[position]`` for the current interval multiset."""
        if self._dirty:
            self._recompile()
        index = bisect_right(self._positions, position) - 1
        if index < 0:
            return 0
        return self._values[index]

    def turning_points(self) -> list[tuple[int, int]]:
        """The current sparse covering table (position, value) pairs."""
        if self._dirty:
            self._recompile()
        return list(zip(self._positions, self._values))

    @classmethod
    def from_node_set(cls, node_set: NodeSet) -> "DynamicTTree":
        return cls(node_set.elements)
