"""Statistics maintenance under document updates.

A cost-based optimizer's statistics must survive inserts into the XML
store.  This package keeps each synopsis of the paper incrementally
up to date instead of rebuilding it per estimate:

* :mod:`repro.maintenance.incremental` — an insert/delete-capable PL
  histogram whose bucket statistics always equal a fresh build;
* :mod:`repro.maintenance.cells` — an insert/delete-capable PH grid
  whose cell counts always equal a fresh build;
* :mod:`repro.maintenance.dynamic_ttree` — T-tree maintenance: interval
  insertion/deletion as range updates over the turning points;
* :mod:`repro.maintenance.reservoir` — a reservoir sample of the
  descendant set (Algorithm R with random-pairing deletions), feeding
  IM-DA-Est without re-sampling per estimate.

:mod:`repro.stream` drives all four from a live mutation feed.
"""

from repro.maintenance.cells import IncrementalCellHistogram
from repro.maintenance.dynamic_ttree import DynamicTTree
from repro.maintenance.incremental import IncrementalPLHistogram
from repro.maintenance.reservoir import ReservoirSample

__all__ = [
    "DynamicTTree",
    "IncrementalCellHistogram",
    "IncrementalPLHistogram",
    "ReservoirSample",
]
