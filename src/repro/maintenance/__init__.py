"""Statistics maintenance under document updates.

A cost-based optimizer's statistics must survive inserts into the XML
store.  This package keeps each synopsis of the paper incrementally
up to date instead of rebuilding it per estimate:

* :mod:`repro.maintenance.incremental` — an insert/delete-capable PL
  histogram whose bucket statistics always equal a fresh build;
* :mod:`repro.maintenance.dynamic_ttree` — T-tree maintenance: interval
  insertion/deletion as range updates over the turning points;
* :mod:`repro.maintenance.reservoir` — a classic reservoir sample of the
  descendant set, feeding IM-DA-Est without re-sampling per estimate.
"""

from repro.maintenance.dynamic_ttree import DynamicTTree
from repro.maintenance.incremental import IncrementalPLHistogram
from repro.maintenance.reservoir import ReservoirSample

__all__ = ["DynamicTTree", "IncrementalPLHistogram", "ReservoirSample"]
