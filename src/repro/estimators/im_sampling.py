"""IM-DA-Est: interval-model descendant adaptive sampling (Algorithm 2).

Inspired by bifocal sampling plus the key XML observation of Section 5.1:
a descendant point can stab at most ``H`` ancestor intervals (``H`` = tree
height), so with ``H < O(sqrt(|A|))`` *every* subjoin is sparse and the
bifocal machinery collapses to a single procedure — sample ``m`` points
from ``IMD(D)``, count for each how many ``IMA(A)`` intervals it stabs,
and scale by ``|D| / m``.

Theorem 3: the estimate X̂ is unbiased (E[X̂] = X) and, by Hoeffding
bounds on the [0, H·|D|/m]-valued contributions, X̂ = Θ(X) + O(|D|) with
high probability — an improvement over the O(n log n) requirement of
plain bifocal sampling.  Both properties are verified by the test suite.

The per-sample probe ("how many intervals contain this point?") supports
three interchangeable backends (Section 5.3.1): the rank oracle (two
binary searches), the T-tree and the XR-tree.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.index.stab import StabbingCounter
from repro.index.ttree import TTree
from repro.index.xrtree import XRTree

Backend = Literal["rank", "ttree", "xrtree"]


class IMSamplingEstimator(Estimator):
    """IM-DA-Est (Algorithm 2).

    Args:
        num_samples: sample size ``m``; mutually exclusive with ``budget``.
        budget: byte budget converted at 8 bytes per sample.
        seed: RNG seed or generator; consecutive ``estimate`` calls draw
            fresh samples (the experiment harness averages over them).
        backend: probe structure for the stabbing counts.
        replace: sample descendants with replacement.  The default False
            matches Algorithm 2's "random sample from IMD(D)"; when the
            requested m exceeds |D| the sample is the whole set and the
            estimate is exact.
    """

    name = "IM"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
        backend: Backend = "rank",
        replace: bool = False,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        if backend not in ("rank", "ttree", "xrtree"):
            raise EstimationError(f"unknown backend {backend!r}")
        self.backend: Backend = backend
        self.replace = replace
        self._rng = make_rng(seed)

    def _stab_counts(
        self, ancestors: NodeSet, points: np.ndarray
    ) -> np.ndarray:
        if self.backend == "rank":
            return StabbingCounter(ancestors).count_many(points)
        if self.backend == "ttree":
            ttree = TTree(ancestors)
            return np.array(
                [ttree.count(int(p)) for p in points], dtype=np.int64
            )
        xrtree = XRTree(ancestors)
        return np.array(
            [xrtree.stab_count(int(p)) for p in points], dtype=np.int64
        )

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name, details={"samples": 0})
        population = len(descendants)
        if self.replace:
            m = self.num_samples
            indices = self._rng.integers(0, population, size=m)
        else:
            m = min(self.num_samples, population)
            indices = self._rng.choice(population, size=m, replace=False)
        points = descendants.starts[indices]
        counts = self._stab_counts(ancestors, points)
        value = float(counts.sum()) * population / m
        return Estimate(
            value,
            self.name,
            details={
                "samples": m,
                "backend": self.backend,
                "replace": self.replace,
                "max_subjoin": int(counts.max()) if m else 0,
            },
        )
