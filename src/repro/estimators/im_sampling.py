"""IM-DA-Est: interval-model descendant adaptive sampling (Algorithm 2).

Inspired by bifocal sampling plus the key XML observation of Section 5.1:
a descendant point can stab at most ``H`` ancestor intervals (``H`` = tree
height), so with ``H < O(sqrt(|A|))`` *every* subjoin is sparse and the
bifocal machinery collapses to a single procedure — sample ``m`` points
from ``IMD(D)``, count for each how many ``IMA(A)`` intervals it stabs,
and scale by ``|D| / m``.

Theorem 3: the estimate X̂ is unbiased (E[X̂] = X) and, by Hoeffding
bounds on the [0, H·|D|/m]-valued contributions, X̂ = Θ(X) + O(|D|) with
high probability — an improvement over the O(n log n) requirement of
plain bifocal sampling.  Both properties are verified by the test suite.

The per-sample probe ("how many intervals contain this point?") supports
three interchangeable backends (Section 5.3.1): the rank oracle (two
binary searches), the T-tree and the XR-tree.  All three probe through
the fused kernels of :func:`repro.kernels.fused.stab_sum_max`: with an
ambient :class:`~repro.perf.IndexCache` the whole probe is one gather
from the cached stab-count table, and even cold it runs straight off
the operand arena with no index object built — the paper's structures
are rebuilt per call only under :func:`repro.perf.reference_kernels`.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.estimators.sampling_base import SamplingEstimator
from repro.kernels import fused
from repro.obs import runtime as _obs
from repro.perf import IndexCache, resolve_index_cache

Backend = Literal["rank", "ttree", "xrtree"]


class IMSamplingEstimator(SamplingEstimator):
    """IM-DA-Est (Algorithm 2).

    Args:
        num_samples: sample size ``m``; mutually exclusive with ``budget``.
        budget: byte budget converted at 8 bytes per sample.
        seed: RNG seed or generator; consecutive ``estimate`` calls draw
            fresh samples (the experiment harness averages over them).
        backend: probe structure for the stabbing counts.
        replace: sample descendants with replacement.  The default False
            matches Algorithm 2's "random sample from IMD(D)"; when the
            requested m exceeds |D| the sample is the whole set and the
            estimate is exact.
        index_cache: probe-index cache; defaults to the ambient one
            (:func:`repro.perf.use_index_cache`), if any.
    """

    name = "IM"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
        backend: Backend = "rank",
        replace: bool = False,
        index_cache: IndexCache | None = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        if backend not in ("rank", "ttree", "xrtree"):
            raise EstimationError(f"unknown backend {backend!r}")
        self.backend: Backend = backend
        self.replace = replace
        self._rng = make_rng(seed)
        self._index_cache = index_cache

    def _run_trials(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
        rngs: Sequence[np.random.Generator],
    ) -> list[Estimate]:
        population = len(descendants)
        if self.replace:
            m = self.num_samples
            index_rows = self._draw_uniform_matrix(rngs, 0, population, m)
        else:
            m = min(self.num_samples, population)
            index_rows = self._draw_choice_rows(rngs, population, m)
        sums, maxes = fused.stab_sum_max(
            ancestors,
            descendants,
            index_rows.ravel(),
            len(rngs),
            m,
            probe_backend=self.backend,
            cache=resolve_index_cache(self._index_cache),
            name=self.name,
        )
        with _obs.phase_timer(self.name, "scale"):
            return [
                Estimate(
                    float(sums[i]) * population / m,
                    self.name,
                    details={
                        "samples": m,
                        "backend": self.backend,
                        "replace": self.replace,
                        "max_subjoin": int(maxes[i]),
                    },
                )
                for i in range(len(rngs))
            ]
