"""The coverage histogram — the no-overlap remedy of Wu et al. (EDBT 2002).

When no ancestor contains another ancestor (the *no-overlap* property of
Table 2), each descendant joins at most one ancestor, and the join size is
simply the number of descendants whose start falls inside the region union
of the ancestor set.  The coverage histogram stores how much of the
workspace that union covers and multiplies by descendant counts:

* ``mode="global"`` — one scalar: the covered fraction of the whole
  workspace, applied to the total descendant count.  This embodies the
  "global coverage statistics equal local coverage statistics" assumption
  the paper criticizes in Section 2.1.
* ``mode="local"`` — per-bucket covered fractions applied to per-bucket
  descendant counts; accurate whenever descendants are uniform within a
  bucket (the same assumption PL makes).

The interval merge and the per-bucket overlap sums are numpy bulk
operations; the original loops are retained as ``*_reference`` functions
(selected by :func:`repro.perf.reference_kernels`) and the property suite
asserts both paths agree bit for bit.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro import perf
from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.obs import runtime as _obs
from repro.perf.cache import SummaryCache, resolve_cache

CoverageMode = Literal["global", "local"]


def merged_intervals_reference(node_set: NodeSet) -> list[tuple[int, int]]:
    """Per-element loop implementation of :func:`merged_intervals`."""
    merged: list[tuple[int, int]] = []
    for element in node_set:
        if merged and element.start <= merged[-1][1]:
            if element.end > merged[-1][1]:
                merged[-1] = (merged[-1][0], element.end)
        else:
            merged.append((element.start, element.end))
    return merged


def merged_interval_bounds(node_set: NodeSet) -> np.ndarray:
    """Union of the set's regions as a disjoint, sorted ``(M, 2)`` array.

    The array-native kernel behind :func:`merged_intervals`: a running
    maximum over the (start-sorted) end codes finds the union components
    — a new component begins wherever a start code exceeds every
    previous end — and the bounds come back as one ``column_stack``
    instead of a Python tuple list.  Every hot path (the cached COV
    summary, the shard merge layer) consumes this form directly; the
    tuple-list API below survives for compatibility and the reference
    parity suite.
    """
    if perf.reference_kernels_enabled():
        merged = merged_intervals_reference(node_set)
        return np.array(merged, dtype=np.int64).reshape(-1, 2)
    size = len(node_set)
    if size == 0:
        return np.empty((0, 2), dtype=np.int64)
    starts = node_set.starts
    reach = np.maximum.accumulate(node_set.ends)
    fresh = np.empty(size, dtype=bool)
    fresh[0] = True
    fresh[1:] = starts[1:] > reach[:-1]
    heads = np.flatnonzero(fresh)
    tails = np.append(heads[1:] - 1, size - 1)
    return np.column_stack((starts[heads], reach[tails]))


def merged_intervals(node_set: NodeSet) -> list[tuple[int, int]]:
    """Union of the set's regions as disjoint, sorted interval tuples.

    Thin tuple-list adapter over :func:`merged_interval_bounds` (the
    per-interval Python materialization is the only cost here — pass
    the array form to anything that can take it).
    """
    if perf.reference_kernels_enabled():
        return merged_intervals_reference(node_set)
    bounds = merged_interval_bounds(node_set)
    return list(zip(bounds[:, 0].tolist(), bounds[:, 1].tolist()))


def bucket_coverage_reference(
    merged: list[tuple[int, int]], wss: float, wse: float
) -> float:
    """Per-interval loop implementation of :func:`bucket_coverage`."""
    width = wse - wss
    if width <= 0:
        return 0.0
    covered = 0.0
    for start, end in merged:
        if end <= wss:
            continue
        if start >= wse:
            break
        covered += min(end, wse) - max(start, wss)
    return covered / width


def bucket_coverage(
    merged: list[tuple[int, int]] | np.ndarray, wss: float, wse: float
) -> float:
    """Fraction of ``[wss, wse)`` covered by the merged intervals.

    Accepts either the list of ``(start, end)`` tuples or a previously
    converted ``(M, 2)`` array (reused across buckets by the local-mode
    estimator).  The overlap sum accumulates through an ordered
    ``np.add.at`` so the float result matches the reference loop bit for
    bit — out-of-window intervals clip to exactly 0.0, which the
    reference skips, and adding 0.0 is a float no-op.
    """
    if perf.reference_kernels_enabled() and not isinstance(
        merged, np.ndarray
    ):
        return bucket_coverage_reference(merged, wss, wse)
    width = wse - wss
    if width <= 0:
        return 0.0
    pairs = np.asarray(merged, dtype=np.int64)
    if pairs.size == 0:
        return 0.0
    overlaps = np.clip(
        np.minimum(pairs[:, 1], wse) - np.maximum(pairs[:, 0], wss),
        0.0,
        None,
    )
    accumulator = np.zeros(1)
    np.add.at(
        accumulator, np.zeros(overlaps.size, dtype=np.intp), overlaps
    )
    return float(accumulator[0]) / width


def merged_intervals_cached(
    node_set: NodeSet, cache: SummaryCache | None = None
) -> np.ndarray:
    """Merged-interval array ``(M, 2)`` through the summary cache."""
    cache = resolve_cache(cache)
    build = lambda: merged_interval_bounds(node_set)  # noqa: E731
    if cache is None:
        return build()
    return cache.get_or_build(
        ("cov-merged", node_set.fingerprint), build
    )


class CoverageHistogramEstimator(Estimator):
    """Coverage-based estimation for (near) no-overlap ancestor sets."""

    name = "COV"

    def __init__(
        self,
        num_buckets: int | None = None,
        budget: SpaceBudget | None = None,
        mode: CoverageMode = "global",
        cache: SummaryCache | None = None,
    ) -> None:
        if (num_buckets is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_buckets or budget"
            )
        self.num_buckets = (
            num_buckets if num_buckets is not None else budget.ph_buckets
        )
        if self.num_buckets < 1:
            raise EstimationError(f"need >= 1 bucket, got {self.num_buckets}")
        if mode not in ("global", "local"):
            raise EstimationError(f"unknown coverage mode {mode!r}")
        self.mode: CoverageMode = mode
        self.cache = cache

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self.resolve_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name)
        cache = resolve_cache(self.cache)
        with _obs.phase_timer(self.name, "summary_build"):
            if perf.reference_kernels_enabled():
                merged: list[tuple[int, int]] | np.ndarray = (
                    merged_intervals(ancestors)
                )
            else:
                merged = merged_intervals_cached(ancestors, cache)
        if self.mode == "global":
            coverage = bucket_coverage(
                merged, workspace.lo, workspace.hi + 1
            )
            value = coverage * len(descendants)
            return Estimate(
                value,
                self.name,
                details={"mode": "global", "coverage": coverage},
            )
        total = 0.0
        bounds = workspace.buckets(self.num_buckets)
        edges = np.array([b.wss for b in bounds] + [bounds[-1].wse])
        counts, __ = np.histogram(descendants.starts, bins=edges)
        for bucket, n_d in zip(bounds, counts):
            if n_d == 0:
                continue
            total += bucket_coverage(merged, bucket.wss, bucket.wse) * int(n_d)
        return Estimate(
            total,
            self.name,
            details={"mode": "local", "num_buckets": self.num_buckets},
        )
