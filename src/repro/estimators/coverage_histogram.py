"""The coverage histogram — the no-overlap remedy of Wu et al. (EDBT 2002).

When no ancestor contains another ancestor (the *no-overlap* property of
Table 2), each descendant joins at most one ancestor, and the join size is
simply the number of descendants whose start falls inside the region union
of the ancestor set.  The coverage histogram stores how much of the
workspace that union covers and multiplies by descendant counts:

* ``mode="global"`` — one scalar: the covered fraction of the whole
  workspace, applied to the total descendant count.  This embodies the
  "global coverage statistics equal local coverage statistics" assumption
  the paper criticizes in Section 2.1.
* ``mode="local"`` — per-bucket covered fractions applied to per-bucket
  descendant counts; accurate whenever descendants are uniform within a
  bucket (the same assumption PL makes).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator

CoverageMode = Literal["global", "local"]


def merged_intervals(node_set: NodeSet) -> list[tuple[int, int]]:
    """Union of the set's regions as disjoint, sorted intervals."""
    merged: list[tuple[int, int]] = []
    for element in node_set:
        if merged and element.start <= merged[-1][1]:
            if element.end > merged[-1][1]:
                merged[-1] = (merged[-1][0], element.end)
        else:
            merged.append((element.start, element.end))
    return merged


def bucket_coverage(
    merged: list[tuple[int, int]], wss: float, wse: float
) -> float:
    """Fraction of ``[wss, wse)`` covered by the merged intervals."""
    width = wse - wss
    if width <= 0:
        return 0.0
    covered = 0.0
    for start, end in merged:
        if end <= wss:
            continue
        if start >= wse:
            break
        covered += min(end, wse) - max(start, wss)
    return covered / width


class CoverageHistogramEstimator(Estimator):
    """Coverage-based estimation for (near) no-overlap ancestor sets."""

    name = "COV"

    def __init__(
        self,
        num_buckets: int | None = None,
        budget: SpaceBudget | None = None,
        mode: CoverageMode = "global",
    ) -> None:
        if (num_buckets is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_buckets or budget"
            )
        self.num_buckets = (
            num_buckets if num_buckets is not None else budget.ph_buckets
        )
        if self.num_buckets < 1:
            raise EstimationError(f"need >= 1 bucket, got {self.num_buckets}")
        if mode not in ("global", "local"):
            raise EstimationError(f"unknown coverage mode {mode!r}")
        self.mode: CoverageMode = mode

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self.resolve_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name)
        merged = merged_intervals(ancestors)
        if self.mode == "global":
            coverage = bucket_coverage(
                merged, workspace.lo, workspace.hi + 1
            )
            value = coverage * len(descendants)
            return Estimate(
                value,
                self.name,
                details={"mode": "global", "coverage": coverage},
            )
        total = 0.0
        bounds = workspace.buckets(self.num_buckets)
        edges = np.array([b.wss for b in bounds] + [bounds[-1].wse])
        counts, __ = np.histogram(descendants.starts, bins=edges)
        for bucket, n_d in zip(bounds, counts):
            if n_d == 0:
                continue
            total += bucket_coverage(merged, bucket.wss, bucket.wse) * int(n_d)
        return Estimate(
            total,
            self.name,
            details={"mode": "local", "num_buckets": self.num_buckets},
        )
