"""AGMS/Fast-AGMS sketch estimator — the paper's deferred future work.

Section 7 defers "applying other existing techniques, such as wavelet
approximation and sketch, to this problem".  The position model makes the
application direct: Theorem 2 turns the containment join size into the
inner product ``Σ_v PMA(A)[v] · PMD(D)[v]``, which is exactly the
join-size functional that AGMS sketches (Alon-Matias-Szegedy; Alon,
Gibbons, Matias, Szegedy) estimate with bounded variance.

This module implements the Fast-AGMS (Count-Sketch) variant: ``depth``
rows, each hashing positions into ``width`` counters with a pairwise-
independent bucket hash and a four-wise independent ±1 hash.  Sketching
both tables with *shared* hashes makes the per-row bucket-product sum an
unbiased inner-product estimator; the median over rows boosts the
confidence exponentially (the same amplification as Section 5.3.2).

Space accounting: one counter = 8 bytes, so a byte budget buys
``budget // 8`` counters split into ``depth`` rows.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.models.position import covering_table, start_table

#: Mersenne prime used for the polynomial hash family.
_PRIME = (1 << 61) - 1


class _PolyHash:
    """Polynomial hashing over GF(p): k-wise independence from degree k-1."""

    def __init__(self, coefficients: np.ndarray) -> None:
        self._coefficients = coefficients.astype(object)

    @classmethod
    def random(cls, degree: int, rng: np.random.Generator) -> "_PolyHash":
        coefficients = rng.integers(1, _PRIME, size=degree)
        return cls(coefficients)

    def evaluate(self, keys: np.ndarray) -> np.ndarray:
        """Horner evaluation mod p (object dtype avoids overflow)."""
        acc = np.zeros(len(keys), dtype=object)
        ks = keys.astype(object)
        for coefficient in self._coefficients:
            acc = (acc * ks + int(coefficient)) % _PRIME
        return acc


class CountSketch:
    """A depth × width Count-Sketch of a non-negative integer vector."""

    def __init__(
        self, depth: int, width: int, seed: SeedLike = None
    ) -> None:
        if depth < 1 or width < 1:
            raise EstimationError(
                f"sketch needs depth,width >= 1, got {depth}x{width}"
            )
        self.depth = depth
        self.width = width
        rng = make_rng(seed)
        # Pairwise-independent bucket hashes, 4-wise independent signs.
        self._bucket_hashes = [_PolyHash.random(2, rng) for __ in range(depth)]
        self._sign_hashes = [_PolyHash.random(4, rng) for __ in range(depth)]
        self.counters = np.zeros((depth, width), dtype=np.float64)

    def shares_hashes_with(self, other: "CountSketch") -> bool:
        return (
            self._bucket_hashes is other._bucket_hashes
            and self._sign_hashes is other._sign_hashes
        )

    @classmethod
    def paired(
        cls, depth: int, width: int, seed: SeedLike = None
    ) -> tuple["CountSketch", "CountSketch"]:
        """Two sketches sharing hash functions (required for inner products)."""
        first = cls(depth, width, seed)
        second = cls.__new__(cls)
        second.depth = depth
        second.width = width
        second._bucket_hashes = first._bucket_hashes
        second._sign_hashes = first._sign_hashes
        second.counters = np.zeros((depth, width), dtype=np.float64)
        return first, second

    def update_vector(self, values: np.ndarray, offset: int = 0) -> None:
        """Add a dense vector: position ``offset + i`` gets ``values[i]``.

        Vectorized: only the non-zero positions are hashed.
        """
        nonzero = np.nonzero(values)[0]
        if len(nonzero) == 0:
            return
        keys = nonzero + offset
        weights = values[nonzero].astype(np.float64)
        for row in range(self.depth):
            buckets = (
                self._bucket_hashes[row].evaluate(keys) % self.width
            ).astype(np.int64)
            signs = np.where(
                (self._sign_hashes[row].evaluate(keys) & 1).astype(bool),
                1.0,
                -1.0,
            )
            np.add.at(self.counters[row], buckets, weights * signs)

    def inner_product(self, other: "CountSketch") -> float:
        """Median over rows of the bucket-product sums."""
        if not self.shares_hashes_with(other):
            raise EstimationError(
                "inner products need sketches built with shared hashes; "
                "use CountSketch.paired()"
            )
        row_estimates = np.einsum(
            "rw,rw->r", self.counters, other.counters
        )
        return float(np.median(row_estimates))


class SketchEstimator(Estimator):
    """Containment join size via paired Count-Sketches of PMA and PMD.

    Args:
        num_counters: total counters across all rows; mutually exclusive
            with ``budget`` (8 bytes per counter).
        budget: byte budget.
        depth: sketch rows (median amplification); width is
            ``num_counters // depth``.
        seed: hash-function seed.
    """

    name = "SKETCH"

    def __init__(
        self,
        num_counters: int | None = None,
        budget: SpaceBudget | None = None,
        depth: int = 5,
        seed: SeedLike = None,
    ) -> None:
        if (num_counters is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_counters or budget"
            )
        total = (
            num_counters if num_counters is not None else budget.samples
        )
        if depth < 1:
            raise EstimationError(f"depth must be >= 1, got {depth}")
        width = total // depth
        if width < 1:
            raise EstimationError(
                f"{total} counters cannot fill {depth} rows"
            )
        self.depth = depth
        self.width = width
        self._seed = seed

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self.resolve_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name)
        sketch_a, sketch_d = CountSketch.paired(
            self.depth, self.width, self._seed
        )
        sketch_a.update_vector(
            covering_table(ancestors, workspace), offset=workspace.lo
        )
        sketch_d.update_vector(
            start_table(descendants, workspace), offset=workspace.lo
        )
        value = max(0.0, sketch_a.inner_product(sketch_d))
        return Estimate(
            value,
            self.name,
            details={"depth": self.depth, "width": self.width},
        )
