"""Classic sampling baselines: t_cross and systematic sampling.

Neither appears in the paper's Figure 5–8 comparison, but both belong to
the adaptive-sampling lineage the paper builds on (Section 2), and they
make instructive ablations:

* :class:`CrossSamplingEstimator` — t_cross (Haas et al.): draw ``m``
  independent (a, d) pairs and scale the join-indicator mean by
  ``|A|·|D|``.  Unbiased but with variance proportional to the full
  cross-product, so it needs far more samples than IM-DA-Est.
* :class:`SystematicSamplingEstimator` — Harangsri et al.: take every
  k-th descendant of the start-sorted order from a random offset.  The
  deterministic spacing stratifies the workspace, typically beating
  t_cross at equal sample counts, but correlates with any periodic
  structure in the data.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.index.stab import StabbingCounter


class CrossSamplingEstimator(Estimator):
    """t_cross: independent pair sampling over ``A × D``."""

    name = "CROSS"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        self._rng = make_rng(seed)

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name, details={"samples": 0})
        m = self.num_samples
        a_idx = self._rng.integers(0, len(ancestors), size=m)
        d_idx = self._rng.integers(0, len(descendants), size=m)
        a_starts = ancestors.starts[a_idx]
        a_ends = ancestors.ends[a_idx]
        d_starts = descendants.starts[d_idx]
        hits = int(((a_starts < d_starts) & (d_starts < a_ends)).sum())
        value = hits / m * len(ancestors) * len(descendants)
        return Estimate(
            value, self.name, details={"samples": m, "hits": hits}
        )


class SystematicSamplingEstimator(Estimator):
    """Systematic every-k-th descendant sampling.

    With target sample size ``m``, uses stride ``k = ceil(|D| / m)`` from
    a uniformly random offset in ``[0, k)``, probes the stabbing count of
    each selected descendant and scales by ``k`` — an unbiased estimate
    over the random offset.
    """

    name = "SYS"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        self._rng = make_rng(seed)

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name, details={"samples": 0})
        population = len(descendants)
        stride = max(1, -(-population // self.num_samples))  # ceil division
        offset = int(self._rng.integers(0, stride))
        points = descendants.starts[offset::stride]
        counts = StabbingCounter(ancestors).count_many(points)
        value = float(counts.sum()) * stride
        return Estimate(
            value,
            self.name,
            details={
                "samples": int(len(points)),
                "stride": stride,
                "offset": offset,
            },
        )
