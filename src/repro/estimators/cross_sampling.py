"""Classic sampling baselines: t_cross and systematic sampling.

Neither appears in the paper's Figure 5–8 comparison, but both belong to
the adaptive-sampling lineage the paper builds on (Section 2), and they
make instructive ablations:

* :class:`CrossSamplingEstimator` — t_cross (Haas et al.): draw ``m``
  independent (a, d) pairs and scale the join-indicator mean by
  ``|A|·|D|``.  Unbiased but with variance proportional to the full
  cross-product, so it needs far more samples than IM-DA-Est.
* :class:`SystematicSamplingEstimator` — Harangsri et al.: take every
  k-th descendant of the start-sorted order from a random offset.  The
  deterministic spacing stratifies the workspace, typically beating
  t_cross at equal sample counts, but correlates with any periodic
  structure in the data.

Both run on the :class:`~repro.estimators.sampling_base.SamplingEstimator`
engine, so repeated trials evaluate as one batched comparison / probe.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.estimators.sampling_base import SamplingEstimator
from repro.kernels import fused
from repro.obs import runtime as _obs
from repro.perf import IndexCache, resolve_index_cache


class CrossSamplingEstimator(SamplingEstimator):
    """t_cross: independent pair sampling over ``A × D``."""

    name = "CROSS"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        self._rng = make_rng(seed)

    def _run_trials(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
        rngs: Sequence[np.random.Generator],
    ) -> list[Estimate]:
        m = self.num_samples
        # Each trial draws its ancestor indices before its descendant
        # indices; the alternating bounds rule out one bulk call, but the
        # draws are trivially cheap next to the comparison kernel.
        a_rows = []
        d_rows = []
        for rng in rngs:
            a_rows.append(rng.integers(0, len(ancestors), size=m))
            d_rows.append(rng.integers(0, len(descendants), size=m))
        a_idx = np.concatenate(a_rows) if len(rngs) > 1 else a_rows[0]
        d_idx = np.concatenate(d_rows) if len(rngs) > 1 else d_rows[0]
        hit_counts = fused.cross_hits(
            ancestors, descendants, a_idx, d_idx, len(rngs), m,
            name=self.name,
        )
        with _obs.phase_timer(self.name, "scale"):
            results = []
            for i in range(len(rngs)):
                hits = int(hit_counts[i])
                value = hits / m * len(ancestors) * len(descendants)
                results.append(
                    Estimate(
                        value,
                        self.name,
                        details={"samples": m, "hits": hits},
                    )
                )
            return results


class SystematicSamplingEstimator(SamplingEstimator):
    """Systematic every-k-th descendant sampling.

    With target sample size ``m``, uses stride ``k = ceil(|D| / m)`` from
    a uniformly random offset in ``[0, k)``, probes the stabbing count of
    each selected descendant and scales by ``k`` — an unbiased estimate
    over the random offset.
    """

    name = "SYS"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
        index_cache: IndexCache | None = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        self._rng = make_rng(seed)
        self._index_cache = index_cache

    def _run_trials(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
        rngs: Sequence[np.random.Generator],
    ) -> list[Estimate]:
        population = len(descendants)
        stride = max(1, -(-population // self.num_samples))  # ceil division
        # A scalar draw per trial, matching the sequential stream; the
        # selected index rows have data-dependent lengths, so trials are
        # concatenated raggedly and reduced segment-wise by the kernel.
        offsets = [int(rng.integers(0, stride)) for rng in rngs]
        rows = [
            np.arange(offset, population, stride, dtype=np.int64)
            for offset in offsets
        ]
        indices = np.concatenate(rows) if len(rows) > 1 else rows[0]
        lengths = [row.shape[0] for row in rows]
        row_offsets = np.zeros(len(rows), dtype=np.int64)
        row_offsets[1:] = np.cumsum(lengths[:-1], dtype=np.int64)
        segment_totals = fused.stab_segment_sums(
            ancestors,
            descendants,
            indices,
            row_offsets,
            cache=resolve_index_cache(self._index_cache),
            name=self.name,
        )
        with _obs.phase_timer(self.name, "scale"):
            results = []
            for i, offset in enumerate(offsets):
                results.append(
                    Estimate(
                        float(segment_totals[i]) * stride,
                        self.name,
                        details={
                            "samples": int(lengths[i]),
                            "stride": stride,
                            "offset": offset,
                        },
                    )
                )
            return results
