"""Sampling estimators for containment *semijoin* sizes.

Extends the paper's IM-DA-Est idea to the predicate-selectivity problem
(``//paper[appendix/table]``-style existence tests):

* :class:`SemijoinDescendantsEstimator` — samples descendants and counts
  the fraction with at least one ancestor; scaled by |D|.  Identical
  structure (and guarantees) to Algorithm 2 with the subjoin size replaced
  by an indicator, so the per-sample contribution is bounded by |D|/m
  regardless of tree height.
* :class:`SemijoinAncestorsEstimator` — samples ancestors and probes
  whether any descendant start lies strictly inside; scaled by |A|.

Both are unbiased for their semijoin cardinalities (checked statistically
by the test suite) and run on the
:class:`~repro.estimators.sampling_base.SamplingEstimator` engine.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.estimators.sampling_base import SamplingEstimator
from repro.kernels import fused
from repro.obs import runtime as _obs
from repro.perf import IndexCache, resolve_index_cache


class _SemijoinSamplingBase(SamplingEstimator):
    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
        index_cache: IndexCache | None = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        self._rng = make_rng(seed)
        self._index_cache = index_cache


class SemijoinDescendantsEstimator(_SemijoinSamplingBase):
    """Estimate ``|{d : ∃a ancestor of d}|`` by descendant sampling."""

    name = "SEMI-D"

    def _run_trials(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
        rngs: Sequence[np.random.Generator],
    ) -> list[Estimate]:
        population = len(descendants)
        m = min(self.num_samples, population)
        index_rows = self._draw_choice_rows(rngs, population, m)
        hit_counts = fused.stab_positive(
            ancestors,
            descendants,
            index_rows.ravel(),
            len(rngs),
            m,
            cache=resolve_index_cache(self._index_cache),
            name=self.name,
        )
        with _obs.phase_timer(self.name, "scale"):
            results = []
            for i in range(len(rngs)):
                hits = int(hit_counts[i])
                results.append(
                    Estimate(
                        hits * population / m,
                        self.name,
                        details={"samples": m, "hits": hits},
                    )
                )
            return results


class SemijoinAncestorsEstimator(_SemijoinSamplingBase):
    """Estimate ``|{a : ∃d descendant of a}|`` by ancestor sampling."""

    name = "SEMI-A"

    def _run_trials(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
        rngs: Sequence[np.random.Generator],
    ) -> list[Estimate]:
        population = len(ancestors)
        m = min(self.num_samples, population)
        index_rows = self._draw_choice_rows(rngs, population, m)
        hit_counts = fused.span_hits(
            ancestors,
            descendants,
            index_rows.ravel(),
            len(rngs),
            m,
            name=self.name,
        )
        with _obs.phase_timer(self.name, "scale"):
            results = []
            for i in range(len(rngs)):
                hits = int(hit_counts[i])
                results.append(
                    Estimate(
                        hits * population / m,
                        self.name,
                        details={"samples": m, "hits": hits},
                    )
                )
            return results
