"""Sampling estimators for containment *semijoin* sizes.

Extends the paper's IM-DA-Est idea to the predicate-selectivity problem
(``//paper[appendix/table]``-style existence tests):

* :class:`SemijoinDescendantsEstimator` — samples descendants and counts
  the fraction with at least one ancestor; scaled by |D|.  Identical
  structure (and guarantees) to Algorithm 2 with the subjoin size replaced
  by an indicator, so the per-sample contribution is bounded by |D|/m
  regardless of tree height.
* :class:`SemijoinAncestorsEstimator` — samples ancestors and probes
  whether any descendant start lies strictly inside; scaled by |A|.

Both are unbiased for their semijoin cardinalities (checked statistically
by the test suite).
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.index.stab import StabbingCounter


class _SemijoinSamplingBase(Estimator):
    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        self._rng = make_rng(seed)


class SemijoinDescendantsEstimator(_SemijoinSamplingBase):
    """Estimate ``|{d : ∃a ancestor of d}|`` by descendant sampling."""

    name = "SEMI-D"

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name, details={"samples": 0})
        population = len(descendants)
        m = min(self.num_samples, population)
        indices = self._rng.choice(population, size=m, replace=False)
        points = descendants.starts[indices]
        hits = int(
            (StabbingCounter(ancestors).count_many(points) > 0).sum()
        )
        return Estimate(
            hits * population / m,
            self.name,
            details={"samples": m, "hits": hits},
        )


class SemijoinAncestorsEstimator(_SemijoinSamplingBase):
    """Estimate ``|{a : ∃d descendant of a}|`` by ancestor sampling."""

    name = "SEMI-A"

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name, details={"samples": 0})
        population = len(ancestors)
        m = min(self.num_samples, population)
        indices = self._rng.choice(population, size=m, replace=False)
        starts = descendants.starts
        sample_starts = ancestors.starts[indices]
        sample_ends = ancestors.ends[indices]
        first_inside = np.searchsorted(starts, sample_starts, side="right")
        first_beyond = np.searchsorted(starts, sample_ends, side="left")
        hits = int((first_beyond > first_inside).sum())
        return Estimate(
            hits * population / m,
            self.name,
            details={"samples": m, "hits": hits},
        )
