"""The MRE (maximum relative error) confidence measure, Section 4.2.

For a bucket with average interval length ``l``, width ``w`` and ``n_D``
descendant points, define the *coverage*::

    cov = l / w * n_D

"how many d's one a covers on average".  In the discrete domain the true
per-ancestor match count is ``ceil(cov)`` with probability
``cov - floor(cov)`` and ``floor(cov)`` otherwise, so the histogram
estimate ``n_A * cov`` carries a worst-case relative error of

    MRE = max( (ceil(cov) - cov) / ceil(cov),  (cov - floor(cov)) / floor(cov) )

(Equation 2).  MRE is 0 at integer cov, bounded by 1 for cov > 1, and
*unbounded* for 0 < cov < 1 — the regime where the paper recommends
switching to the sampling estimators.
"""

from __future__ import annotations

import math


def cov_value(average_length: float, n_descendants: int, width: float) -> float:
    """The coverage statistic ``cov = l / w * n_D`` of one bucket."""
    if width <= 0:
        raise ValueError(f"bucket width must be > 0, got {width}")
    return average_length / width * n_descendants


def maximum_relative_error(cov: float) -> float:
    """Equation 2: worst-case relative error of a PL bucket estimate.

    Returns 0.0 for cov == 0 (nothing to estimate, nothing to get wrong),
    ``math.inf`` for 0 < cov < 1 and the periodic bounded value for
    cov >= 1.
    """
    if cov < 0:
        raise ValueError(f"cov must be >= 0, got {cov}")
    if cov == 0:
        return 0.0
    ceiling = math.ceil(cov)
    floor = math.floor(cov)
    if ceiling == floor:  # integer cov: both error terms vanish
        return 0.0
    if floor == 0:
        return math.inf
    return max((ceiling - cov) / ceiling, (cov - floor) / floor)


def mre_series(
    lo: float = 1.0, hi: float = 10.0, step: float = 0.01
) -> list[tuple[float, float]]:
    """The (cov, MRE) curve of Figure 3.

    Samples cov on a regular grid over ``[lo, hi]``; with the default
    range this reproduces the figure's sawtooth whose per-period maxima
    decrease as cov grows.
    """
    if step <= 0:
        raise ValueError(f"step must be > 0, got {step}")
    points: list[tuple[float, float]] = []
    count = int(round((hi - lo) / step))
    for i in range(count + 1):
        cov = lo + i * step
        points.append((cov, maximum_relative_error(cov)))
    return points
