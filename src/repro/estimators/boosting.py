"""Probabilistic boosting: median of means (Section 5.3.2).

Run ``s1 · s2`` independent estimates, average each group of ``s1``, and
take the median of the ``s2`` group averages.  Averaging shrinks variance;
the median step turns a constant-probability accuracy guarantee into an
exponentially-high-probability one (the standard AMS amplification).

Works with any stochastic estimator whose repeated ``estimate`` calls
draw fresh samples (all the sampling estimators in this package do).
"""

from __future__ import annotations

import statistics

from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator


class BoostedEstimator(Estimator):
    """Median-of-means wrapper around a stochastic base estimator.

    Args:
        base: the estimator to amplify; its sampling cost is paid
            ``s1 * s2`` times.
        s1: estimates averaged per group.
        s2: groups whose averages are medianed.
    """

    name = "BOOST"

    def __init__(self, base: Estimator, s1: int = 4, s2: int = 5) -> None:
        if s1 < 1 or s2 < 1:
            raise EstimationError(
                f"s1 and s2 must be >= 1, got s1={s1}, s2={s2}"
            )
        self.base = base
        self.s1 = s1
        self.s2 = s2

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        averages: list[float] = []
        for __ in range(self.s2):
            group = [
                self.base.estimate(ancestors, descendants, workspace).value
                for __ in range(self.s1)
            ]
            averages.append(sum(group) / self.s1)
        value = statistics.median(averages)
        return Estimate(
            value,
            self.name,
            details={
                "base": self.base.name,
                "s1": self.s1,
                "s2": self.s2,
                "group_averages": averages,
                "spread": max(averages) - min(averages),
            },
        )
