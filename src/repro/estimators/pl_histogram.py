"""The PL (Point-Line) histogram estimator, Section 4.

Built on the interval model: descendants are points (their start
positions), ancestors are intervals.  The workspace is partitioned into
``b`` equal buckets and each bucket ``i`` keeps the Table 1 statistics —
``n(R, i)``, ``wss(R, i)``, ``wse(R, i)`` and, for the ancestor role, the
average interval length ``l(R, i)``.  Equation 1 then estimates

    X̂ = Σ_i  l(A,i) / (wse(A,i) - wss(A,i)) · n(A,i) · n(D,i)

under two assumptions only: A and D are independent, and D is uniform
*within each bucket* — strictly weaker than the 2D-uniform assumption of
the PH baseline.

Boundary rules (Section 4.1, note 2): an ancestor spanning several buckets
is counted in every bucket it crosses; a descendant is counted only in the
bucket containing its start.

Length statistic: with ``length_mode="clipped"`` (default) an interval
contributes only its in-bucket portion to ``l(A, i)``, which makes
Equation 1 exact in the continuous uniform limit even for intervals
crossing bucket boundaries.  ``length_mode="full"`` uses the raw interval
length in every crossed bucket (the literal reading of Table 1); the
ablation benchmark compares both.

Bucket boundaries: ``bucketing="equi-width"`` (the paper's scheme)
partitions the workspace evenly; ``bucketing="equi-depth"`` places the
boundaries at descendant-start quantiles — Section 4.1's remark that the
uniform assumption "can be made approximately valid if ... bucket
boundaries are carefully selected", realized.  Both operands always share
one partitioning, as the paper requires.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro import perf
from repro.core.budget import SpaceBudget
from repro.obs import runtime as _obs
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Bucket, Workspace
from repro.estimators.base import Estimate, Estimator
from repro.estimators.mre import cov_value, maximum_relative_error
from repro.perf.cache import SummaryCache, resolve_cache

LengthMode = Literal["clipped", "full"]
Bucketing = Literal["equi-width", "equi-depth"]


def equi_depth_edges(
    descendants: NodeSet, workspace: Workspace, num_buckets: int
) -> list[float]:
    """Bucket edges at descendant-start quantiles (strictly increasing).

    Quantile collisions (heavily skewed starts) merge edges, so the
    effective bucket count can be smaller than requested.
    """
    if len(descendants) == 0:
        return [b.wss for b in workspace.buckets(num_buckets)] + [
            float(workspace.hi + 1)
        ]
    interior = np.quantile(
        descendants.starts, np.linspace(0.0, 1.0, num_buckets + 1)[1:-1]
    )
    edges = np.concatenate(
        ([float(workspace.lo)], interior, [float(workspace.hi + 1)])
    )
    unique = np.unique(edges)
    return [float(v) for v in unique]


def _buckets_from_edges(edges: list[float]) -> list[Bucket]:
    return [
        Bucket(i, edges[i], edges[i + 1]) for i in range(len(edges) - 1)
    ]


def _locate(edges: list[float], position: float) -> int:
    """Index of the bucket containing ``position`` (edges half-open)."""
    index = bisect_right(edges, position) - 1
    return min(max(index, 0), len(edges) - 2)


@dataclass(frozen=True, slots=True)
class PLBucket:
    """Per-bucket statistics of Table 1."""

    index: int
    wss: float
    wse: float
    n: int
    total_length: float = 0.0  # ancestor role only

    @property
    def width(self) -> float:
        return self.wse - self.wss

    @property
    def average_length(self) -> float:
        """``l(R, i)``: mean interval length in the bucket (0 if empty)."""
        return self.total_length / self.n if self.n else 0.0


class PLHistogram:
    """A built PL histogram for one node set in one join role."""

    def __init__(
        self, buckets: list[PLBucket], role: Literal["ancestor", "descendant"]
    ) -> None:
        self.buckets = buckets
        self.role = role

    def __len__(self) -> int:
        return len(self.buckets)

    @classmethod
    def build_ancestor_reference(
        cls,
        node_set: NodeSet,
        workspace: Workspace,
        num_buckets: int,
        length_mode: LengthMode = "clipped",
        edges: list[float] | None = None,
    ) -> "PLHistogram":
        """Per-element loop implementation of :meth:`build_ancestor`."""
        if edges is None:
            bounds = workspace.buckets(num_buckets)
            edges = [b.wss for b in bounds] + [bounds[-1].wse]
        else:
            bounds = _buckets_from_edges(edges)
        count = len(bounds)
        counts = [0] * count
        lengths = [0.0] * count
        for element in node_set:
            first = _locate(edges, element.start)
            last = _locate(edges, element.end)
            for i in range(first, last + 1):
                counts[i] += 1
                if length_mode == "clipped":
                    lengths[i] += min(element.end, bounds[i].wse) - max(
                        element.start, bounds[i].wss
                    )
                else:
                    lengths[i] += element.length
        buckets = [
            PLBucket(i, bounds[i].wss, bounds[i].wse, counts[i], lengths[i])
            for i in range(count)
        ]
        return cls(buckets, "ancestor")

    @classmethod
    def build_ancestor(
        cls,
        node_set: NodeSet,
        workspace: Workspace,
        num_buckets: int,
        length_mode: LengthMode = "clipped",
        edges: list[float] | None = None,
    ) -> "PLHistogram":
        """Histogram of ``node_set`` playing the ancestor (interval) role.

        ``edges`` overrides the equal-width partitioning with explicit
        strictly increasing bucket boundaries (used by equi-depth mode).

        Vectorized: per-element bucket ranges come from two
        ``np.searchsorted`` calls, the (element, bucket) incidence is
        expanded with ``np.repeat``, counts fall out of ``np.bincount``
        and clipped lengths accumulate through ``np.add.at`` — which
        applies its updates in operand order, so float totals match the
        reference loop bit for bit.
        """
        if perf.reference_kernels_enabled():
            return cls.build_ancestor_reference(
                node_set, workspace, num_buckets, length_mode, edges
            )
        if edges is None:
            bounds = workspace.buckets(num_buckets)
            edges = [b.wss for b in bounds] + [bounds[-1].wse]
        else:
            bounds = _buckets_from_edges(edges)
        count = len(bounds)
        edge_array = np.asarray(edges, dtype=np.float64)
        counts = np.zeros(count, dtype=np.int64)
        lengths = np.zeros(count, dtype=np.float64)
        if len(node_set):
            starts = node_set.starts
            ends = node_set.ends
            first = np.clip(
                np.searchsorted(edge_array, starts, side="right") - 1,
                0,
                count - 1,
            )
            last = np.clip(
                np.searchsorted(edge_array, ends, side="right") - 1,
                0,
                count - 1,
            )
            spans = last - first + 1
            element_of = np.repeat(np.arange(len(node_set)), spans)
            offsets = np.arange(len(element_of)) - np.repeat(
                np.cumsum(spans) - spans, spans
            )
            bucket_of = first[element_of] + offsets
            counts = np.bincount(bucket_of, minlength=count).astype(np.int64)
            if length_mode == "clipped":
                contributions = np.minimum(
                    ends[element_of], edge_array[bucket_of + 1]
                ) - np.maximum(starts[element_of], edge_array[bucket_of])
            else:
                contributions = (ends - starts)[element_of].astype(
                    np.float64
                )
            np.add.at(lengths, bucket_of, contributions)
        buckets = [
            PLBucket(
                i,
                bounds[i].wss,
                bounds[i].wse,
                int(counts[i]),
                float(lengths[i]),
            )
            for i in range(count)
        ]
        return cls(buckets, "ancestor")

    @classmethod
    def build_descendant(
        cls,
        node_set: NodeSet,
        workspace: Workspace,
        num_buckets: int,
        edges: list[float] | None = None,
    ) -> "PLHistogram":
        """Histogram of ``node_set`` playing the descendant (point) role."""
        if edges is None:
            bounds = workspace.buckets(num_buckets)
            edge_array = np.array([b.wss for b in bounds] + [bounds[-1].wse])
        else:
            bounds = _buckets_from_edges(edges)
            edge_array = np.array(edges)
        counts, __ = np.histogram(node_set.starts, bins=edge_array)
        buckets = [
            PLBucket(i, bounds[i].wss, bounds[i].wse, int(counts[i]))
            for i in range(len(bounds))
        ]
        return cls(buckets, "descendant")


def _edges_key(edges: list[float] | None) -> tuple[float, ...] | None:
    return None if edges is None else tuple(edges)


def build_ancestor_cached(
    node_set: NodeSet,
    workspace: Workspace,
    num_buckets: int,
    length_mode: LengthMode = "clipped",
    edges: list[float] | None = None,
    cache: SummaryCache | None = None,
) -> PLHistogram:
    """:meth:`PLHistogram.build_ancestor` through the summary cache.

    With no explicit or ambient cache this is a plain build.  The key
    covers everything that shapes the histogram: set content, workspace,
    bucket count, length mode and (for equi-depth) the literal edges.
    """
    cache = resolve_cache(cache)
    build = lambda: PLHistogram.build_ancestor(  # noqa: E731
        node_set, workspace, num_buckets, length_mode, edges
    )
    if cache is None:
        return build()
    key = (
        "pl-ancestor",
        node_set.fingerprint,
        workspace,
        num_buckets,
        length_mode,
        _edges_key(edges),
    )
    return cache.get_or_build(key, build)


def build_descendant_cached(
    node_set: NodeSet,
    workspace: Workspace,
    num_buckets: int,
    edges: list[float] | None = None,
    cache: SummaryCache | None = None,
) -> PLHistogram:
    """:meth:`PLHistogram.build_descendant` through the summary cache."""
    cache = resolve_cache(cache)
    build = lambda: PLHistogram.build_descendant(  # noqa: E731
        node_set, workspace, num_buckets, edges
    )
    if cache is None:
        return build()
    key = (
        "pl-descendant",
        node_set.fingerprint,
        workspace,
        num_buckets,
        _edges_key(edges),
    )
    return cache.get_or_build(key, build)


class PLHistogramEstimator(Estimator):
    """PL-Hist-Est (Algorithm 1) with the MRE confidence measure.

    Args:
        num_buckets: number of workspace buckets ``b``; mutually exclusive
            with ``budget``.
        budget: a byte budget converted at 20 bytes per bucket.
        length_mode: see module docstring.
        cache: summary cache for built histograms; defaults to the
            ambient cache installed by :func:`repro.perf.use_cache`.
    """

    name = "PL"

    def __init__(
        self,
        num_buckets: int | None = None,
        budget: SpaceBudget | None = None,
        length_mode: LengthMode = "clipped",
        bucketing: Bucketing = "equi-width",
        cache: SummaryCache | None = None,
    ) -> None:
        if (num_buckets is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_buckets or budget"
            )
        resolved = num_buckets if num_buckets is not None else budget.pl_buckets
        if resolved < 1:
            raise EstimationError(f"need >= 1 bucket, got {resolved}")
        if length_mode not in ("clipped", "full"):
            raise EstimationError(f"unknown length_mode {length_mode!r}")
        if bucketing not in ("equi-width", "equi-depth"):
            raise EstimationError(f"unknown bucketing {bucketing!r}")
        self.num_buckets = resolved
        self.length_mode: LengthMode = length_mode
        self.bucketing: Bucketing = bucketing
        self.cache = cache

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self.resolve_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name, mre=0.0)
        cache = resolve_cache(self.cache)
        with _obs.phase_timer(self.name, "summary_build"):
            edges = None
            if self.bucketing == "equi-depth":
                if cache is None:
                    edges = equi_depth_edges(
                        descendants, workspace, self.num_buckets
                    )
                else:
                    edges = cache.get_or_build(
                        (
                            "pl-edges",
                            descendants.fingerprint,
                            workspace,
                            self.num_buckets,
                        ),
                        lambda: equi_depth_edges(
                            descendants, workspace, self.num_buckets
                        ),
                    )
            hist_a = build_ancestor_cached(
                ancestors, workspace, self.num_buckets, self.length_mode,
                edges=edges, cache=cache,
            )
            hist_d = build_descendant_cached(
                descendants, workspace, self.num_buckets, edges=edges,
                cache=cache,
            )
        with _obs.phase_timer(self.name, "estimate"):
            return self.estimate_from_histograms(hist_a, hist_d)

    def estimate_from_histograms(
        self, hist_a: PLHistogram, hist_d: PLHistogram
    ) -> Estimate:
        """Algorithm 1 over pre-built histograms (identical partitioning)."""
        if len(hist_a) != len(hist_d):
            raise EstimationError(
                "histograms must use the same partitioning: "
                f"{len(hist_a)} vs {len(hist_d)} buckets"
            )
        total = 0.0
        cov_weight = 0
        cov_sum = 0.0
        worst_mre = 0.0
        for bucket_a, bucket_d in zip(hist_a.buckets, hist_d.buckets):
            if bucket_a.n == 0:
                continue
            cov = cov_value(
                bucket_a.average_length, bucket_d.n, bucket_a.width
            )
            total += bucket_a.n * cov
            cov_sum += cov * bucket_a.n
            cov_weight += bucket_a.n
            if bucket_d.n:
                worst_mre = max(worst_mre, maximum_relative_error(cov))
        average_cov = cov_sum / cov_weight if cov_weight else 0.0
        return Estimate(
            value=total,
            estimator=self.name,
            mre=maximum_relative_error(average_cov),
            details={
                "num_buckets": self.num_buckets,
                "length_mode": self.length_mode,
                "bucketing": self.bucketing,
                "average_cov": average_cov,
                "worst_bucket_mre": worst_mre,
            },
        )

    def average_cov(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> float:
        """The query-level average cov statistic reported in Table 4."""
        result = self.estimate(ancestors, descendants, workspace)
        return result.details.get("average_cov", 0.0)
