"""Two-sample estimation: when only synopses of *both* operands exist.

IM-DA-Est probes the full ancestor set per sampled descendant — fine when
the base data (or an XR-tree over it) is reachable.  A statistics
*catalog*, however, stores only a budget-bounded synopsis per tag and
must estimate joins between two tags it has never seen together.  With a
uniform sample from each side the join size is still estimable:

    X̂ = (|A| / m_A) · (|D| / m_D) · |{(a, d) ∈ S_A × S_D : a ⊃ d}|

Unbiasedness: each cross pair (a, d) of the population appears in
``S_A × S_D`` with probability ``(m_A/|A|)·(m_D/|D|)``, so the scaled
indicator sum has expectation X.  The variance is higher than IM-DA-Est's
(the subjoins are no longer evaluated exactly), which is precisely the
price of probing a synopsis instead of the data — quantified in the
catalog benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.models.interval import stabbing_pairs_count


def two_sample_estimate(
    ancestor_sample: NodeSet,
    ancestor_population: int,
    descendant_points: np.ndarray,
    descendant_population: int,
) -> float:
    """The scaled cross-sample stabbing count (see module docstring)."""
    m_a = len(ancestor_sample)
    m_d = len(descendant_points)
    if m_a == 0 or m_d == 0:
        return 0.0
    hits = stabbing_pairs_count(ancestor_sample, descendant_points)
    return (
        hits
        * (ancestor_population / m_a)
        * (descendant_population / m_d)
    )


class TwoSampleEstimator(Estimator):
    """Containment join size from independent samples of both operands.

    Args:
        num_samples: sample size per operand; mutually exclusive with
            ``budget`` (split evenly between the two sides).
        budget: byte budget, split evenly: ``budget.samples // 2``
            entries per operand.
        seed: RNG seed.
    """

    name = "2SAMPLE"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples // 2
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        self._rng = make_rng(seed)

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name, details={"samples": 0})
        m_a = min(self.num_samples, len(ancestors))
        m_d = min(self.num_samples, len(descendants))
        sample_a = NodeSet(
            ancestors.sample(m_a, self._rng), validate=False
        )
        d_indices = self._rng.choice(len(descendants), size=m_d, replace=False)
        points = descendants.starts[d_indices]
        value = two_sample_estimate(
            sample_a, len(ancestors), points, len(descendants)
        )
        return Estimate(
            value,
            self.name,
            details={"ancestor_samples": m_a, "descendant_samples": m_d},
        )
