"""The uniform estimator interface.

Every estimation method — histogram or sampling, ours or baseline — takes
two node sets (ancestor operand first) plus the workspace of the underlying
tree, and returns an :class:`Estimate`.  Estimators are small configured
objects so the experiment harness can sweep their parameters uniformly.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace


@dataclass(frozen=True, slots=True)
class Estimate:
    """The result of one size estimation.

    Attributes:
        value: the estimated containment join cardinality (>= 0).
        estimator: name of the estimator that produced it.
        mre: the PL histogram's maximum-relative-error confidence measure
            (Equation 2), ``math.inf`` when unbounded, None for estimators
            without such a measure.
        details: method-specific diagnostics (bucket counts, sample sizes,
            average cov, ...).
    """

    value: float
    estimator: str
    mre: float | None = None
    details: dict[str, Any] = field(default_factory=dict)

    def relative_error(self, true_size: int) -> float:
        """``|x - x̂| / x`` as a percentage — the paper's quality metric.

        When the true size is 0, returns 0.0 for an exact estimate and
        ``math.inf`` otherwise (the paper's workloads never hit this case).
        """
        if true_size == 0:
            return 0.0 if self.value == 0 else math.inf
        return abs(true_size - self.value) / true_size * 100.0


class Estimator(abc.ABC):
    """Base class for containment join size estimators."""

    #: Short name used in reports ("PL", "PH", "IM", "PM", ...).
    name: ClassVar[str] = "?"

    @abc.abstractmethod
    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        """Estimate ``|ancestors ⋈ descendants|``.

        Args:
            ancestors: the ancestor operand ``A``.
            descendants: the descendant operand ``D``.
            workspace: the position domain; defaults to the tight span of
                both operands when omitted.
        """

    def size(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> float:
        """Convenience shortcut for ``estimate(...).value``."""
        return self.estimate(ancestors, descendants, workspace).value

    @staticmethod
    def resolve_workspace(
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
    ) -> Workspace:
        """Default the workspace to the tight span of both operands."""
        if workspace is not None:
            return workspace.validate()
        spans = []
        if len(ancestors):
            spans.append(ancestors.workspace())
        if len(descendants):
            spans.append(descendants.workspace())
        if not spans:
            return Workspace(0, 1)
        return Workspace.spanning(spans)
