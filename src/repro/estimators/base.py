"""The uniform estimator interface.

Every estimation method — histogram or sampling, ours or baseline — takes
two node sets (ancestor operand first) plus the workspace of the underlying
tree, and returns an :class:`Estimate`.  Estimators are small configured
objects so the experiment harness can sweep their parameters uniformly.
"""

from __future__ import annotations

import abc
import functools
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar

from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.obs import runtime as _obs

#: Version of the :meth:`Estimate.to_dict` wire schema.  Bumped whenever
#: a field is renamed, removed, or changes meaning; additions are
#: backward compatible and do not bump it.
ESTIMATE_SCHEMA_VERSION = 1


def _to_wire(value: Any) -> Any:
    """A strictly JSON-representable copy of a result field.

    numpy scalars become Python scalars, non-finite floats become the
    strings ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"`` (strict JSON has
    no encoding for them), containers are converted recursively, and
    anything else is stringified.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)) or hasattr(value, "item"):
        value = value.item() if hasattr(value, "item") else value
        if isinstance(value, float) and not math.isfinite(value):
            if math.isnan(value):
                return "NaN"
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, dict):
        return {str(k): _to_wire(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_wire(v) for v in value]
    return str(value)


def _from_wire_float(value: Any) -> float | None:
    """Invert :func:`_to_wire` for a float-valued field."""
    if value is None:
        return None
    if value == "Infinity":
        return math.inf
    if value == "-Infinity":
        return -math.inf
    if value == "NaN":
        return math.nan
    return float(value)


@dataclass(frozen=True, slots=True)
class Estimate:
    """The result of one size estimation.

    Attributes:
        value: the estimated containment join cardinality (>= 0).
        estimator: name of the estimator that produced it.
        mre: the PL histogram's maximum-relative-error confidence measure
            (Equation 2), ``math.inf`` when unbounded, None for estimators
            without such a measure.
        details: method-specific diagnostics (bucket counts, sample sizes,
            average cov, ...).
    """

    value: float
    estimator: str
    mre: float | None = None
    details: dict[str, Any] = field(default_factory=dict)

    def relative_error(self, true_size: int) -> float:
        """``|x - x̂| / x`` as a percentage — the paper's quality metric.

        ``value`` is a cardinality estimate and therefore expected to be
        ``>= 0`` (every estimator in this package guarantees it); the
        magnitude here is of the *unsigned* deviation — use
        :meth:`signed_relative_error` to keep the over/underestimate
        direction.

        When the true size is 0, returns 0.0 for an exact estimate and
        ``math.inf`` otherwise (the paper's workloads never hit this case).
        """
        if true_size == 0:
            return 0.0 if self.value == 0 else math.inf
        return abs(true_size - self.value) / true_size * 100.0

    def signed_relative_error(self, true_size: int) -> float:
        """``(x̂ - x) / x`` as a percentage, keeping the sign.

        Positive means overestimate, negative underestimate.  The zero
        truth convention matches :meth:`relative_error`: 0.0 for an
        exact estimate, ``math.inf`` for any nonzero one.
        """
        if true_size == 0:
            return 0.0 if self.value == 0 else math.inf
        return (self.value - true_size) / true_size * 100.0

    def to_dict(self) -> dict[str, Any]:
        """The stable JSON wire form of this estimate.

        One schema serves every serialization in the package — JSONL
        telemetry ``estimate`` events, ``BENCH_*.json`` reports and
        estimation-service responses — so consumers parse a single
        format.  The layout is versioned by ``schema_version``
        (:data:`ESTIMATE_SCHEMA_VERSION`); every value is strictly
        JSON-representable (non-finite floats are encoded as the strings
        ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"``).
        """
        return {
            "schema_version": ESTIMATE_SCHEMA_VERSION,
            "estimator": self.estimator,
            "value": _to_wire(self.value),
            "mre": _to_wire(self.mre),
            "details": _to_wire(self.details),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Estimate":
        """Rebuild an :class:`Estimate` from its :meth:`to_dict` form.

        Raises :class:`~repro.core.errors.EstimationError` for a missing
        or unsupported ``schema_version``.
        """
        version = payload.get("schema_version")
        if version != ESTIMATE_SCHEMA_VERSION:
            raise EstimationError(
                f"unsupported Estimate schema_version {version!r} "
                f"(this version reads {ESTIMATE_SCHEMA_VERSION})"
            )
        return cls(
            value=_from_wire_float(payload["value"]),
            estimator=str(payload["estimator"]),
            mre=_from_wire_float(payload.get("mre")),
            details=dict(payload.get("details") or {}),
        )


def _instrument_estimate(
    method: Callable[..., Estimate],
) -> Callable[..., Estimate]:
    """Wrap a concrete ``estimate`` with the observation hook.

    While :func:`repro.obs.enabled` is False the wrapper is one branch
    on a module-level flag; while observation is on it records the
    call's wall time, ``mre`` and sample/bucket details into the
    ambient registry and streams an ``estimate`` event to the ambient
    sink (see :func:`repro.obs.record_estimate`).
    """

    @functools.wraps(method)
    def estimate(
        self: "Estimator",
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        if not _obs.enabled():
            return method(self, ancestors, descendants, workspace)
        start = time.perf_counter()
        result = method(self, ancestors, descendants, workspace)
        _obs.record_estimate(
            self.name,
            result,
            time.perf_counter() - start,
            len(ancestors),
            len(descendants),
        )
        return result

    estimate._obs_instrumented = True  # type: ignore[attr-defined]
    return estimate


class Estimator(abc.ABC):
    """Base class for containment join size estimators.

    Subclasses overriding :meth:`estimate` are instrumented
    automatically (via ``__init_subclass__``): every call records wall
    time and result diagnostics through :mod:`repro.obs` whenever
    observation is enabled, and costs a single guard branch otherwise.
    """

    #: Short name used in reports ("PL", "PH", "IM", "PM", ...).
    name: ClassVar[str] = "?"

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("estimate")
        if impl is not None and not getattr(
            impl, "_obs_instrumented", False
        ):
            cls.estimate = _instrument_estimate(impl)  # type: ignore

    @abc.abstractmethod
    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        """Estimate ``|ancestors ⋈ descendants|``.

        Args:
            ancestors: the ancestor operand ``A``.
            descendants: the descendant operand ``D``.
            workspace: the position domain; defaults to the tight span of
                both operands when omitted.
        """

    def size(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> float:
        """Convenience shortcut for ``estimate(...).value``."""
        return self.estimate(ancestors, descendants, workspace).value

    @staticmethod
    def resolve_workspace(
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
    ) -> Workspace:
        """Default the workspace to the tight span of both operands."""
        if workspace is not None:
            return workspace.validate()
        spans = []
        if len(ancestors):
            spans.append(ancestors.workspace())
        if len(descendants):
            spans.append(descendants.workspace())
        if not spans:
            return Workspace(0, 1)
        return Workspace.spanning(spans)
