"""Haar-wavelet estimator — the paper's other deferred future work.

Section 3.1 notes the open difficulty of wavelet methods on region-coded
data: approximating the *element distribution* can produce invalid
(partially overlapping) regions.  The position model sidesteps this: we
approximate the ``PMA``/``PMD`` *tables* — plain non-negative vectors —
not the elements, so no validity constraint can break.

Both tables are transformed with the orthonormal Haar wavelet; each keeps
its ``k`` largest-magnitude coefficients.  Orthonormality preserves inner
products, so the join size (Theorem 2's inner product) is estimated as
the inner product of the two sparse coefficient vectors.  With all
coefficients kept the estimate is exact — a property the tests verify.

Space accounting: one kept coefficient = (index, value) = 8 bytes in the
paper's accounting, split evenly between the two tables.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.models.position import covering_table, start_table


def haar_transform(values: np.ndarray) -> np.ndarray:
    """Orthonormal Haar wavelet transform (input padded to a power of 2).

    Uses the standard cascade: at each level, pairwise (sum, difference)
    scaled by 1/sqrt(2); orthonormal, so Parseval (and inner products)
    hold exactly.
    """
    n = len(values)
    if n == 0:
        return np.zeros(0)
    size = 1 << (n - 1).bit_length()
    data = np.zeros(size, dtype=np.float64)
    data[:n] = values
    coefficients = np.empty(size, dtype=np.float64)
    write_from = size
    current = data
    root = np.sqrt(2.0)
    while len(current) > 1:
        pairs = current.reshape(-1, 2)
        averages = (pairs[:, 0] + pairs[:, 1]) / root
        details = (pairs[:, 0] - pairs[:, 1]) / root
        write_from -= len(details)
        coefficients[write_from : write_from + len(details)] = details
        current = averages
    coefficients[0] = current[0]
    return coefficients


def inverse_haar_transform(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_transform` (length must be a power of 2)."""
    size = len(coefficients)
    if size == 0:
        return np.zeros(0)
    if size & (size - 1):
        raise EstimationError("coefficient length must be a power of 2")
    root = np.sqrt(2.0)
    current = np.array([coefficients[0]], dtype=np.float64)
    level = 1
    while len(current) < size:
        details = coefficients[level : 2 * level]
        expanded = np.empty(2 * len(current), dtype=np.float64)
        expanded[0::2] = (current + details) / root
        expanded[1::2] = (current - details) / root
        current = expanded
        level *= 2
    return current


def top_k_coefficients(
    coefficients: np.ndarray, k: int
) -> dict[int, float]:
    """The ``k`` largest-magnitude coefficients as index -> value."""
    if k <= 0:
        return {}
    k = min(k, len(coefficients))
    order = np.argsort(-np.abs(coefficients), kind="stable")[:k]
    return {int(i): float(coefficients[i]) for i in order}


class WaveletEstimator(Estimator):
    """Containment join size via truncated Haar transforms of PMA/PMD.

    Args:
        num_coefficients: coefficients kept *per table*; mutually
            exclusive with ``budget`` (which is split evenly).
        budget: byte budget at 8 bytes per kept coefficient.
    """

    name = "WAVELET"

    def __init__(
        self,
        num_coefficients: int | None = None,
        budget: SpaceBudget | None = None,
    ) -> None:
        if (num_coefficients is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_coefficients or budget"
            )
        if num_coefficients is not None:
            self.per_table = num_coefficients
        else:
            self.per_table = budget.samples // 2
        if self.per_table < 1:
            raise EstimationError(
                f"need >= 1 coefficient per table, got {self.per_table}"
            )

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self.resolve_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name)
        coeff_a = top_k_coefficients(
            haar_transform(
                covering_table(ancestors, workspace).astype(np.float64)
            ),
            self.per_table,
        )
        coeff_d = top_k_coefficients(
            haar_transform(
                start_table(descendants, workspace).astype(np.float64)
            ),
            self.per_table,
        )
        # Orthonormal basis: inner product = Σ over shared indices.
        smaller, larger = sorted((coeff_a, coeff_d), key=len)
        value = sum(
            weight * larger[index]
            for index, weight in smaller.items()
            if index in larger
        )
        return Estimate(
            max(0.0, value),
            self.name,
            details={
                "coefficients_per_table": self.per_table,
                "kept_a": len(coeff_a),
                "kept_d": len(coeff_d),
            },
        )
