"""Shared multi-trial execution engine for the sampling estimators.

Every sampling method in the package (IM-DA-Est, PM-Est, the baselines)
has the same three-beat body: *draw* sample positions from its RNG,
*probe* them against an index over one operand, *scale* the probe results
into an estimate.  Experiments repeat that body many times — the harness
averages ``runs`` repetitions, Figure 8 sweeps six sample sizes over
eleven queries — and running each repetition separately pays Python
dispatch and index construction per trial for kernels that are a few
microseconds of actual numpy work.

:class:`SamplingEstimator` factors the skeleton so concrete estimators
implement one hook, :meth:`_run_trials`, which receives *one RNG per
trial* and executes every trial in a single pass: all draws up front
(one bulk RNG call when the trials share a generator), one concatenated
probe-kernel invocation, then a per-trial scaling loop over row slices.

The contract making this safe is **bit-for-bit stream equivalence**:

* ``estimator.estimate_trials(A, D, k)`` returns exactly the estimates
  ``k`` sequential ``estimator.estimate(A, D)`` calls would have
  produced — same RNG consumption, same float arithmetic — because a
  numpy ``Generator`` fills a ``(k, m)`` draw identically to ``k``
  size-``m`` draws, and because every scaling expression operates on the
  same per-trial row a sequential call would see;
* ``SamplingEstimator.estimate_across([e1, .., ek], A, D)`` does the
  same for *distinct* estimator instances with identical configuration
  (the harness's fresh-instance-per-repetition pattern), advancing each
  instance's own generator exactly as its solo ``estimate`` would.

``tests/test_index_batch.py`` enforces both equivalences property-style.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

import numpy as np

from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.obs import runtime as _obs


class SamplingEstimator(Estimator):
    """Base class for estimators whose ``estimate`` is draw/probe/scale.

    Concrete subclasses implement :meth:`_run_trials`; this class turns
    it into the public single-shot :meth:`estimate`, the batched
    :meth:`estimate_trials` and the cross-instance
    :meth:`estimate_across`.  Subclasses that sample from the workspace
    (PM-Est, bifocal) override :meth:`_prepare_workspace` to resolve it
    the way their original ``estimate`` did — before the empty-operand
    check, so invalid explicit workspaces still raise.
    """

    def _prepare_workspace(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
    ) -> Workspace | None:
        """Resolve the workspace exactly when the estimator needs one."""
        return workspace

    def _empty_estimate(self) -> Estimate:
        """The estimate for an empty operand (no RNG draw happens)."""
        return Estimate(0.0, self.name, details={"samples": 0})

    def _run_trials(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
        rngs: Sequence[np.random.Generator],
    ) -> list[Estimate]:
        """Execute ``len(rngs)`` trials, drawing trial ``i`` from
        ``rngs[i]``, and return per-trial estimates.

        Called with non-empty operands and ``len(rngs) >= 1``.  Trials
        must consume each generator exactly as a solo :meth:`estimate`
        would, in trial order, so batched and sequential execution see
        identical streams.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self._prepare_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return self._empty_estimate()
        results = self._run_trials(
            ancestors, descendants, workspace, (self._rng,)
        )
        return results[0]

    def estimate_trials(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        trials: int,
        workspace: Workspace | None = None,
    ) -> list[Estimate]:
        """``trials`` independent estimates in one batched pass.

        Returns exactly what ``[self.estimate(ancestors, descendants,
        workspace) for _ in range(trials)]`` would — same values, same
        details, same RNG stream afterwards — with all draws taken in
        one bulk RNG call (where the draw kind allows it) and all probes
        answered by one kernel invocation.
        """
        if trials < 0:
            raise EstimationError(f"trials must be >= 0, got {trials}")
        if trials == 0:
            return []
        workspace = self._prepare_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return [self._empty_estimate() for _ in range(trials)]
        start = time.perf_counter()
        results = self._run_trials(
            ancestors, descendants, workspace, (self._rng,) * trials
        )
        if _obs.enabled():
            self._record_trials(results, start, ancestors, descendants)
        return results

    @classmethod
    def estimate_across(
        cls,
        estimators: "Sequence[SamplingEstimator]",
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> list[Estimate]:
        """One estimate per instance, probed as a single batch.

        All instances must share a class and configuration
        (:meth:`_batch_key`); trial ``i`` draws from ``estimators[i]``'s
        generator, so afterwards every instance's RNG state matches what
        its own ``estimate`` call would have left.  This is the harness
        repetition loop — fresh estimator per run — executed as one
        kernel pass.
        """
        if not estimators:
            return []
        lead = estimators[0]
        key = lead._batch_key()
        for other in estimators[1:]:
            if other._batch_key() != key:
                raise EstimationError(
                    "estimate_across needs identically configured "
                    f"estimators; {other!r} differs from {lead!r}"
                )
        workspace = lead._prepare_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return [e._empty_estimate() for e in estimators]
        start = time.perf_counter()
        results = lead._run_trials(
            ancestors,
            descendants,
            workspace,
            tuple(e._rng for e in estimators),
        )
        if _obs.enabled():
            lead._record_trials(results, start, ancestors, descendants)
        return results

    # ------------------------------------------------------------------
    # Batch hooks (public): how callers decide what can share a pass
    # ------------------------------------------------------------------

    def batch_key(self) -> tuple[Any, ...]:
        """Hashable configuration identity for cross-instance batching.

        Two estimators with equal keys may run through
        :meth:`estimate_across` as one pass; their RNG states may differ
        — per-trial draws keep each instance's stream intact.  This is
        the public form of the identity the estimation service and the
        harness use to coalesce compatible requests.
        """
        return self._batch_key()

    @classmethod
    def batchable(cls, estimators: "Sequence[Estimator]") -> bool:
        """True when ``estimators`` can execute as one
        :meth:`estimate_across` pass: all the same concrete sampling
        class with equal :meth:`batch_key`."""
        if not estimators:
            return False
        first = estimators[0]
        if not isinstance(first, SamplingEstimator):
            return False
        if any(type(e) is not type(first) for e in estimators[1:]):
            return False
        key = first.batch_key()
        return all(e.batch_key() == key for e in estimators[1:])

    # ------------------------------------------------------------------
    # Shared helpers for _run_trials implementations
    # ------------------------------------------------------------------

    def _batch_key(self) -> tuple[Any, ...]:
        """Hashable configuration identity for cross-instance batching.

        Two estimators with equal keys run the same draw/probe/scale
        code on the same parameters (their RNG states may differ —
        that is the point).  Public attributes are the configuration;
        underscored attributes (``_rng``, ``_index_cache``) are not.
        Configuration is fixed after ``__init__``, so the key is
        computed once and memoized (the harness asks per instance per
        batch).
        """
        cached = getattr(self, "_batch_key_cached", None)
        if cached is None:
            config = tuple(
                sorted(
                    (name, value)
                    for name, value in vars(self).items()
                    if not name.startswith("_")
                )
            )
            cached = self._batch_key_cached = (type(self), config)
        return cached

    @staticmethod
    def _draw_uniform_matrix(
        rngs: Sequence[np.random.Generator], lo: int, hi: int, m: int
    ) -> np.ndarray:
        """A ``(len(rngs), m)`` matrix of uniform draws from ``[lo, hi)``,
        row ``i`` drawn from ``rngs[i]``.

        When every trial shares one generator (``estimate_trials``) the
        whole matrix is a single ``integers`` call — numpy fills it
        C-contiguously, so row ``i`` is bit-identical to the ``i``-th
        sequential size-``m`` draw.
        """
        first = rngs[0]
        if all(rng is first for rng in rngs):
            return first.integers(lo, hi, size=(len(rngs), m))
        return np.stack([rng.integers(lo, hi, size=m) for rng in rngs])

    @staticmethod
    def _draw_choice_rows(
        rngs: Sequence[np.random.Generator], population: int, m: int
    ) -> np.ndarray:
        """A ``(len(rngs), m)`` matrix of without-replacement draws.

        ``Generator.choice(replace=False)`` has no batched form with an
        equivalent stream, so rows are drawn per trial — the draws are
        tiny; the win is batching the probes they feed.
        """
        return np.stack(
            [rng.choice(population, size=m, replace=False) for rng in rngs]
        )

    def _record_trials(
        self,
        results: list[Estimate],
        start: float,
        ancestors: NodeSet,
        descendants: NodeSet,
    ) -> None:
        """Record batched trials as per-trial estimate events.

        A batch of ``k`` trials shows up in telemetry as ``k`` estimate
        calls of ``1/k``-th the batch wall time each, so call counts and
        total seconds stay comparable with the sequential path.
        """
        elapsed = time.perf_counter() - start
        per_trial = elapsed / len(results) if results else 0.0
        for result in results:
            _obs.record_estimate(
                self.name,
                result,
                per_trial,
                len(ancestors),
                len(descendants),
            )
