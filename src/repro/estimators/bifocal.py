"""Bifocal sampling (Ganguly et al., SIGMOD 1996) on the position model.

Section 5 of the paper derives IM-DA-Est and PM-Est by *simplifying*
bifocal sampling: in an XML tree no position is covered by more than ``H``
(tree height) ancestors, so when ``H < sqrt(|A|)`` every subjoin is sparse
and the dense-dense machinery is dead weight.  This module implements the
un-simplified algorithm so that claim is checkable:

Theorem 2 casts the containment join as the equijoin
``Σ_v PMA(A)[v] · PMD(D)[v]``.  Bifocal sampling classifies each join
value (= workspace position) as *dense* when its ancestor frequency
``PMA[v]`` reaches a threshold τ (canonically ``sqrt(|A|)``):

* the dense-dense contribution is computed exactly by scanning the O(|A|)
  turning points of ``PMA`` for runs with value >= τ and counting the
  descendant starts inside them;
* the sparse remainder is estimated by uniform position sampling exactly
  as PM-Est does, with dense positions contributing zero to the sample.

On realistic XML (``H`` ≪ τ) the dense partition is empty and the
algorithm *is* PM-Est; on deeply recursive sets (or with a forced low τ)
the exact dense part removes the highest-variance contributions.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.estimators.sampling_base import SamplingEstimator
from repro.kernels import fused
from repro.obs import runtime as _obs
from repro.perf import IndexCache, resolve_index_cache


def dense_runs(
    ancestors: NodeSet, threshold: int
) -> list[tuple[int, int, int]]:
    """Maximal runs ``(first, last, value)`` where ``PMA >= threshold``.

    Consecutive turning-point segments at or above the threshold are
    reported per segment (the value is constant within each).
    """
    positions, values = ancestors.turning_points_arrays
    if positions.shape[0] < 2:
        return []
    # The final turning point always has value 0 (all regions closed), so
    # it never opens a run.
    dense = values[:-1] >= threshold
    return list(
        zip(
            positions[:-1][dense].tolist(),
            (positions[1:][dense] - 1).tolist(),
            values[:-1][dense].tolist(),
        )
    )


class BifocalEstimator(SamplingEstimator):
    """Bifocal sampling over the position-model equijoin.

    Args:
        num_samples: sparse-part sample size; mutually exclusive with
            ``budget``.
        budget: byte budget converted at 8 bytes per sample.
        seed: RNG seed or generator.
        threshold: dense-value threshold τ; defaults to
            ``ceil(sqrt(|A|))`` at estimation time.
        index_cache: probe-index cache; defaults to the ambient one
            (:func:`repro.perf.use_index_cache`), if any.  Besides the
            stabbing index it memoizes the exact dense-dense total,
            which is a pure function of the operands and τ.
    """

    name = "BIFOCAL"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
        threshold: int | None = None,
        index_cache: IndexCache | None = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        if threshold is not None and threshold < 1:
            raise EstimationError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._rng = make_rng(seed)
        self._index_cache = index_cache

    def _prepare_workspace(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
    ) -> Workspace:
        return self.resolve_workspace(ancestors, descendants, workspace)

    @staticmethod
    def _dense_part(
        ancestors: NodeSet, descendants: NodeSet, threshold: int
    ) -> tuple[int, int]:
        """``(run count, exact dense-dense total)`` for threshold τ."""
        runs = dense_runs(ancestors, threshold)
        dense_total = 0
        for first, last, value in runs:
            dense_total += value * descendants.count_starts_in(
                first, last + 1
            )
        return len(runs), dense_total

    def _run_trials(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
        rngs: Sequence[np.random.Generator],
    ) -> list[Estimate]:
        assert workspace is not None  # _prepare_workspace resolved it
        threshold = (
            self.threshold
            if self.threshold is not None
            else max(2, math.isqrt(len(ancestors) - 1) + 1)
        )
        cache = resolve_index_cache(self._index_cache)

        # Exact dense-dense part: descendant starts inside dense runs.
        # Deterministic in (A, D, τ), hence cacheable across trials.
        with _obs.phase_timer(self.name, "index_build"):
            if cache is not None:
                num_runs, dense_total = cache.get_or_build(
                    (
                        "bifocal_dense",
                        ancestors.fingerprint,
                        descendants.fingerprint,
                        threshold,
                    ),
                    lambda: self._dense_part(
                        ancestors, descendants, threshold
                    ),
                )
            else:
                num_runs, dense_total = self._dense_part(
                    ancestors, descendants, threshold
                )

        # Sparse part: PM-Est-style sampling, zeroing dense positions.
        m = self.num_samples
        position_rows = self._draw_uniform_matrix(
            rngs, workspace.lo, workspace.hi + 1, m
        )
        dots = fused.bifocal_sparse_dots(
            ancestors,
            descendants,
            position_rows.ravel(),
            len(rngs),
            m,
            threshold,
            cache=cache,
            name=self.name,
        )
        with _obs.phase_timer(self.name, "scale"):
            results = []
            for i in range(len(rngs)):
                sparse_total = float(dots[i]) * workspace.width / m
                results.append(
                    Estimate(
                        dense_total + sparse_total,
                        self.name,
                        details={
                            "samples": m,
                            "threshold": threshold,
                            "dense_runs": num_runs,
                            "dense_exact": dense_total,
                            "sparse_estimate": sparse_total,
                        },
                    )
                )
            return results
