"""Bifocal sampling (Ganguly et al., SIGMOD 1996) on the position model.

Section 5 of the paper derives IM-DA-Est and PM-Est by *simplifying*
bifocal sampling: in an XML tree no position is covered by more than ``H``
(tree height) ancestors, so when ``H < sqrt(|A|)`` every subjoin is sparse
and the dense-dense machinery is dead weight.  This module implements the
un-simplified algorithm so that claim is checkable:

Theorem 2 casts the containment join as the equijoin
``Σ_v PMA(A)[v] · PMD(D)[v]``.  Bifocal sampling classifies each join
value (= workspace position) as *dense* when its ancestor frequency
``PMA[v]`` reaches a threshold τ (canonically ``sqrt(|A|)``):

* the dense-dense contribution is computed exactly by scanning the O(|A|)
  turning points of ``PMA`` for runs with value >= τ and counting the
  descendant starts inside them;
* the sparse remainder is estimated by uniform position sampling exactly
  as PM-Est does, with dense positions contributing zero to the sample.

On realistic XML (``H`` ≪ τ) the dense partition is empty and the
algorithm *is* PM-Est; on deeply recursive sets (or with a forced low τ)
the exact dense part removes the highest-variance contributions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.index.bplus import start_position_index
from repro.index.stab import StabbingCounter
from repro.models.position import turning_points


def dense_runs(
    ancestors: NodeSet, threshold: int
) -> list[tuple[int, int, int]]:
    """Maximal runs ``(first, last, value)`` where ``PMA >= threshold``.

    Consecutive turning-point segments at or above the threshold are
    reported per segment (the value is constant within each).
    """
    runs: list[tuple[int, int, int]] = []
    points = turning_points(ancestors)
    for (position, value), (next_position, __) in zip(points, points[1:]):
        if value >= threshold:
            runs.append((position, next_position - 1, value))
    # The final turning point always has value 0 (all regions closed), so
    # it never opens a run.
    return runs


class BifocalEstimator(Estimator):
    """Bifocal sampling over the position-model equijoin.

    Args:
        num_samples: sparse-part sample size; mutually exclusive with
            ``budget``.
        budget: byte budget converted at 8 bytes per sample.
        seed: RNG seed or generator.
        threshold: dense-value threshold τ; defaults to
            ``ceil(sqrt(|A|))`` at estimation time.
    """

    name = "BIFOCAL"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
        threshold: int | None = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        if threshold is not None and threshold < 1:
            raise EstimationError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._rng = make_rng(seed)

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self.resolve_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name, details={"samples": 0})
        threshold = (
            self.threshold
            if self.threshold is not None
            else max(2, math.isqrt(len(ancestors) - 1) + 1)
        )
        runs = dense_runs(ancestors, threshold)

        # Exact dense-dense part: descendant starts inside dense runs.
        dense_total = 0
        for first, last, value in runs:
            dense_total += value * descendants.count_starts_in(
                first, last + 1
            )

        # Sparse part: PM-Est-style sampling, zeroing dense positions.
        m = self.num_samples
        positions = self._rng.integers(
            workspace.lo, workspace.hi + 1, size=m
        )
        pma = StabbingCounter(ancestors).count_many(positions)
        start_index = start_position_index(
            [int(s) for s in descendants.starts]
        )
        pmd = np.array(
            [1 if int(v) in start_index else 0 for v in positions],
            dtype=np.int64,
        )
        sparse_mask = pma < threshold
        sparse_sample = int(np.dot(pma * sparse_mask, pmd))
        sparse_total = float(sparse_sample) * workspace.width / m

        return Estimate(
            dense_total + sparse_total,
            self.name,
            details={
                "samples": m,
                "threshold": threshold,
                "dense_runs": len(runs),
                "dense_exact": dense_total,
                "sparse_estimate": sparse_total,
            },
        )
