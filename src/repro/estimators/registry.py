"""Estimator registry: construct any estimator by its short name.

Used by the experiment harness and the examples so that a method sweep is
just a list of names plus shared keyword arguments.

Names are case-insensitive and an alias table maps the paper's longer
method names (``"pl-histogram"``, ``"im-da"``, ``"pm-est"``, ...) onto
the canonical short names; unknown names raise
:class:`~repro.core.errors.UnknownEstimatorError` listing every
available name plus the closest candidates.  An ambiguous fragment
("SEMI" is equally close to SEMI-A and SEMI-D) lists *all* of its near
matches — resolution never silently picks one.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Iterable, Mapping

from repro.core.errors import UnknownEstimatorError
from repro.estimators.base import Estimator
from repro.estimators.bifocal import BifocalEstimator
from repro.estimators.coverage_histogram import CoverageHistogramEstimator
from repro.estimators.cross_sampling import (
    CrossSamplingEstimator,
    SystematicSamplingEstimator,
)
from repro.estimators.hybrid import HybridEstimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.estimators.semijoin_sampling import (
    SemijoinAncestorsEstimator,
    SemijoinDescendantsEstimator,
)
from repro.estimators.sketch import SketchEstimator
from repro.estimators.two_sample import TwoSampleEstimator
from repro.estimators.wavelet import WaveletEstimator

_REGISTRY: dict[str, Callable[..., Estimator]] = {
    "PL": PLHistogramEstimator,
    "PH": PHHistogramEstimator,
    "IM": IMSamplingEstimator,
    "PM": PMSamplingEstimator,
    "COV": CoverageHistogramEstimator,
    "CROSS": CrossSamplingEstimator,
    "SYS": SystematicSamplingEstimator,
    "BIFOCAL": BifocalEstimator,
    "SKETCH": SketchEstimator,
    "WAVELET": WaveletEstimator,
    "SEMI-D": SemijoinDescendantsEstimator,
    "SEMI-A": SemijoinAncestorsEstimator,
    "2SAMPLE": TwoSampleEstimator,
    "HYBRID": HybridEstimator,
}


#: Longer / paper-style method names accepted as synonyms (uppercased).
_ALIASES: dict[str, str] = {
    "PL-HISTOGRAM": "PL",
    "PL-HIST": "PL",
    "PL-HIST-EST": "PL",
    "POINT-LINE": "PL",
    "PH-HISTOGRAM": "PH",
    "POSITIONAL": "PH",
    "POSITIONAL-HISTOGRAM": "PH",
    "IM-DA": "IM",
    "IM-DA-EST": "IM",
    "INTERVAL-SAMPLING": "IM",
    "PM-EST": "PM",
    "POSITION-SAMPLING": "PM",
    "COVERAGE": "COV",
    "COVERAGE-HISTOGRAM": "COV",
    "CROSS-SAMPLING": "CROSS",
    "SYSTEMATIC": "SYS",
    "SYSTEMATIC-SAMPLING": "SYS",
    "BIFOCAL-SAMPLING": "BIFOCAL",
    "COUNT-SKETCH": "SKETCH",
    "SEMIJOIN-ANCESTORS": "SEMI-A",
    "SEMIJOIN-DESCENDANTS": "SEMI-D",
    "TWO-SAMPLE": "2SAMPLE",
}


def available_estimators() -> list[str]:
    """Canonical short names accepted by :func:`make_estimator`."""
    return sorted(_REGISTRY)


def nearest_names(
    name: str,
    names: Iterable[str],
    aliases: Mapping[str, str],
    limit: int = 3,
) -> tuple[str, ...]:
    """Canonical names from ``names`` closest to ``name``, best first.

    The generic nearest-match engine behind every name registry in the
    package (estimators here, cardinality generators in
    :mod:`repro.optimizer.generator`).  Aliases participate in the
    matching but the returned candidates are always canonical names,
    deduplicated in similarity order.
    """
    pool = list(names)
    key = aliases.get(name.strip().upper(), name.strip().upper())
    close = difflib.get_close_matches(
        key, [*pool, *aliases], n=max(limit * 2, 6), cutoff=0.5
    )
    candidates: list[str] = []
    for match in close:
        canonical = aliases.get(match, match)
        if canonical not in candidates:
            candidates.append(canonical)
        if len(candidates) >= limit:
            break
    return tuple(candidates)


def nearest_estimators(name: str, limit: int = 3) -> tuple[str, ...]:
    """Canonical estimator names closest to ``name``, best first.

    Aliases participate in the matching (so "semijoin" finds SEMI-A and
    SEMI-D through the alias table) but the returned candidates are
    always canonical registry names, deduplicated in similarity order.
    """
    return nearest_names(name, _REGISTRY, _ALIASES, limit)


def canonical_name(name: str) -> str:
    """Resolve any accepted spelling to a canonical registry name.

    Raises :class:`UnknownEstimatorError` for unknown names, listing the
    available names and *every* close candidate — an ambiguous fragment
    is reported with all of its near matches rather than silently
    resolved to an arbitrary one.
    """
    key = name.strip().upper()
    key = _ALIASES.get(key, key)
    if key in _REGISTRY:
        return key
    candidates = nearest_estimators(name)
    if not candidates:
        hint = ""
    elif len(candidates) == 1:
        hint = f"; did you mean {candidates[0]!r}?"
    else:
        listed = ", ".join(repr(c) for c in candidates[:-1])
        hint = f"; did you mean {listed} or {candidates[-1]!r}?"
    raise UnknownEstimatorError(
        name,
        candidates,
        f"unknown estimator {name!r}; available: "
        f"{', '.join(available_estimators())}{hint}",
    )


def make_estimator(name: str, **kwargs: Any) -> Estimator:
    """Instantiate an estimator by short name or alias (any case).

    >>> make_estimator("PL", num_buckets=20).name
    'PL'
    >>> make_estimator("pl-histogram", num_buckets=20).name
    'PL'
    """
    return _REGISTRY[canonical_name(name)](**kwargs)
