"""Estimator registry: construct any estimator by its short name.

Used by the experiment harness and the examples so that a method sweep is
just a list of names plus shared keyword arguments.

Names are case-insensitive and an alias table maps the paper's longer
method names (``"pl-histogram"``, ``"im-da"``, ``"pm-est"``, ...) onto
the canonical short names; unknown names raise
:class:`~repro.core.errors.EstimationError` listing every available name
plus the nearest match.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable

from repro.core.errors import EstimationError
from repro.estimators.base import Estimator
from repro.estimators.bifocal import BifocalEstimator
from repro.estimators.coverage_histogram import CoverageHistogramEstimator
from repro.estimators.cross_sampling import (
    CrossSamplingEstimator,
    SystematicSamplingEstimator,
)
from repro.estimators.hybrid import HybridEstimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.estimators.semijoin_sampling import (
    SemijoinAncestorsEstimator,
    SemijoinDescendantsEstimator,
)
from repro.estimators.sketch import SketchEstimator
from repro.estimators.two_sample import TwoSampleEstimator
from repro.estimators.wavelet import WaveletEstimator

_REGISTRY: dict[str, Callable[..., Estimator]] = {
    "PL": PLHistogramEstimator,
    "PH": PHHistogramEstimator,
    "IM": IMSamplingEstimator,
    "PM": PMSamplingEstimator,
    "COV": CoverageHistogramEstimator,
    "CROSS": CrossSamplingEstimator,
    "SYS": SystematicSamplingEstimator,
    "BIFOCAL": BifocalEstimator,
    "SKETCH": SketchEstimator,
    "WAVELET": WaveletEstimator,
    "SEMI-D": SemijoinDescendantsEstimator,
    "SEMI-A": SemijoinAncestorsEstimator,
    "2SAMPLE": TwoSampleEstimator,
    "HYBRID": HybridEstimator,
}


#: Longer / paper-style method names accepted as synonyms (uppercased).
_ALIASES: dict[str, str] = {
    "PL-HISTOGRAM": "PL",
    "PL-HIST": "PL",
    "PL-HIST-EST": "PL",
    "POINT-LINE": "PL",
    "PH-HISTOGRAM": "PH",
    "POSITIONAL": "PH",
    "POSITIONAL-HISTOGRAM": "PH",
    "IM-DA": "IM",
    "IM-DA-EST": "IM",
    "INTERVAL-SAMPLING": "IM",
    "PM-EST": "PM",
    "POSITION-SAMPLING": "PM",
    "COVERAGE": "COV",
    "COVERAGE-HISTOGRAM": "COV",
    "CROSS-SAMPLING": "CROSS",
    "SYSTEMATIC": "SYS",
    "SYSTEMATIC-SAMPLING": "SYS",
    "BIFOCAL-SAMPLING": "BIFOCAL",
    "COUNT-SKETCH": "SKETCH",
    "SEMIJOIN-ANCESTORS": "SEMI-A",
    "SEMIJOIN-DESCENDANTS": "SEMI-D",
    "TWO-SAMPLE": "2SAMPLE",
}


def available_estimators() -> list[str]:
    """Canonical short names accepted by :func:`make_estimator`."""
    return sorted(_REGISTRY)


def canonical_name(name: str) -> str:
    """Resolve any accepted spelling to a canonical registry name.

    Raises :class:`EstimationError` for unknown names, listing the
    available names and the nearest match (when one is close enough).
    """
    key = name.strip().upper()
    key = _ALIASES.get(key, key)
    if key in _REGISTRY:
        return key
    close = difflib.get_close_matches(
        key, [*_REGISTRY, *_ALIASES], n=1, cutoff=0.5
    )
    hint = ""
    if close:
        suggestion = _ALIASES.get(close[0], close[0])
        hint = f"; did you mean {suggestion!r}?"
    raise EstimationError(
        f"unknown estimator {name!r}; available: "
        f"{', '.join(available_estimators())}{hint}"
    )


def make_estimator(name: str, **kwargs: Any) -> Estimator:
    """Instantiate an estimator by short name or alias (any case).

    >>> make_estimator("PL", num_buckets=20).name
    'PL'
    >>> make_estimator("pl-histogram", num_buckets=20).name
    'PL'
    """
    return _REGISTRY[canonical_name(name)](**kwargs)
