"""Estimator registry: construct any estimator by its short name.

Used by the experiment harness and the examples so that a method sweep is
just a list of names plus shared keyword arguments.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.errors import EstimationError
from repro.estimators.base import Estimator
from repro.estimators.bifocal import BifocalEstimator
from repro.estimators.coverage_histogram import CoverageHistogramEstimator
from repro.estimators.cross_sampling import (
    CrossSamplingEstimator,
    SystematicSamplingEstimator,
)
from repro.estimators.hybrid import HybridEstimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.estimators.semijoin_sampling import (
    SemijoinAncestorsEstimator,
    SemijoinDescendantsEstimator,
)
from repro.estimators.sketch import SketchEstimator
from repro.estimators.two_sample import TwoSampleEstimator
from repro.estimators.wavelet import WaveletEstimator

_REGISTRY: dict[str, Callable[..., Estimator]] = {
    "PL": PLHistogramEstimator,
    "PH": PHHistogramEstimator,
    "IM": IMSamplingEstimator,
    "PM": PMSamplingEstimator,
    "COV": CoverageHistogramEstimator,
    "CROSS": CrossSamplingEstimator,
    "SYS": SystematicSamplingEstimator,
    "BIFOCAL": BifocalEstimator,
    "SKETCH": SketchEstimator,
    "WAVELET": WaveletEstimator,
    "SEMI-D": SemijoinDescendantsEstimator,
    "SEMI-A": SemijoinAncestorsEstimator,
    "2SAMPLE": TwoSampleEstimator,
    "HYBRID": HybridEstimator,
}


def available_estimators() -> list[str]:
    """Short names accepted by :func:`make_estimator`."""
    return sorted(_REGISTRY)


def make_estimator(name: str, **kwargs: Any) -> Estimator:
    """Instantiate an estimator by short name.

    >>> make_estimator("PL", num_buckets=20).name
    'PL'
    """
    try:
        factory = _REGISTRY[name.upper()]
    except KeyError:
        raise EstimationError(
            f"unknown estimator {name!r}; available: "
            f"{', '.join(available_estimators())}"
        ) from None
    return factory(**kwargs)
