"""The paper's deployment recommendation as an estimator (Section 6.5).

    "a system should use PL histograms (with few buckets only) ... if
    there is no stringent requirement on the accuracy.  On the other
    hand, in case when highly accurate estimation is required, or when
    the cov value is small and MRE value is high or unbounded, the
    interval model based sampling algorithm is the best choice."

:class:`HybridEstimator` encodes exactly that policy: run the cheap PL
histogram first and inspect its own confidence measure; if the average
cov falls below a threshold (default 1.0 — where MRE becomes unbounded)
or the MRE exceeds a tolerance, discard the histogram estimate and run
IM-DA-Est instead.  The result records which path was taken, so the
benchmark can show the policy pays the sampling cost only on the queries
that need it.
"""

from __future__ import annotations

import math

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator


class HybridEstimator(Estimator):
    """PL histogram with an IM-DA-Est fallback, per Section 6.5.

    Args:
        budget: byte budget, used for whichever method runs (PL buckets
            or IM samples); mutually exclusive with the explicit pair
            ``num_buckets``/``num_samples``.
        num_buckets: PL bucket count (with ``num_samples``).
        num_samples: IM sample size (with ``num_buckets``).
        cov_threshold: fall back to sampling when the PL average cov is
            below this (1.0 = the unbounded-MRE frontier).
        mre_tolerance: fall back when the PL MRE exceeds this; the
            default 1.0 triggers only on unbounded MRE (MRE is < 1
            whenever cov >= 1), i.e. the literal Section 6.5 rule.
        seed: RNG seed for the sampling fallback.
    """

    name = "HYBRID"

    def __init__(
        self,
        budget: SpaceBudget | None = None,
        num_buckets: int | None = None,
        num_samples: int | None = None,
        cov_threshold: float = 1.0,
        mre_tolerance: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        explicit = num_buckets is not None and num_samples is not None
        if budget is None and not explicit:
            raise EstimationError(
                "provide budget, or both num_buckets and num_samples"
            )
        if budget is not None and explicit:
            raise EstimationError(
                "provide either budget or the explicit pair, not both"
            )
        if cov_threshold < 0 or mre_tolerance < 0:
            raise EstimationError("thresholds must be >= 0")
        if budget is not None:
            self._histogram = PLHistogramEstimator(budget=budget)
            self._sampler = IMSamplingEstimator(budget=budget, seed=seed)
        else:
            self._histogram = PLHistogramEstimator(num_buckets=num_buckets)
            self._sampler = IMSamplingEstimator(
                num_samples=num_samples, seed=seed
            )
        self.cov_threshold = cov_threshold
        self.mre_tolerance = mre_tolerance

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        histogram = self._histogram.estimate(ancestors, descendants, workspace)
        average_cov = histogram.details.get("average_cov", 0.0)
        mre = histogram.mre if histogram.mre is not None else math.inf
        risky = (
            (0.0 < average_cov < self.cov_threshold)
            or mre > self.mre_tolerance
        )
        if not risky:
            return Estimate(
                histogram.value,
                self.name,
                mre=histogram.mre,
                details={**histogram.details, "path": "histogram"},
            )
        sampled = self._sampler.estimate(ancestors, descendants, workspace)
        return Estimate(
            sampled.value,
            self.name,
            details={
                **sampled.details,
                "path": "sampling",
                "histogram_cov": average_cov,
                "histogram_mre": mre,
            },
        )
