"""Containment join size estimators.

The paper's algorithms:

* :class:`PLHistogramEstimator` — the PL (Point-Line) histogram, Section 4.
* :class:`IMSamplingEstimator` — IM-DA-Est interval-model adaptive
  sampling, Algorithm 2.
* :class:`PMSamplingEstimator` — PM-Est position-model sampling,
  Algorithm 3.

Baselines and extensions:

* :class:`PHHistogramEstimator` — the positional/coverage histogram of Wu,
  Patel and Jagadish (EDBT 2002), the prior work the paper compares
  against.
* :class:`CoverageHistogramEstimator` — the coverage remedy in isolation,
  with global- and local-statistics modes.
* :class:`CrossSamplingEstimator` — naive t_cross pair sampling.
* :class:`SystematicSamplingEstimator` — systematic every-k-th sampling
  (Harangsri et al.).
* :class:`BifocalEstimator` — bifocal sampling (Ganguly et al.) adapted to
  the position-model equijoin; degenerates to PM-Est on shallow trees,
  exactly as Section 5 observes.
* :class:`BoostedEstimator` — median-of-means probabilistic boosting
  (Section 5.3.2).
* :class:`SketchEstimator` / :class:`WaveletEstimator` — the future-work
  directions of Section 7, realized through the position model.
* :class:`SemijoinDescendantsEstimator` / :class:`SemijoinAncestorsEstimator`
  — XPath-predicate (semijoin) selectivities by sampling.
* :func:`join_size_bounds` / :func:`clamp_estimate` — hard structural
  cardinality bounds usable as a post-processor.
"""

from repro.estimators.base import Estimate, Estimator
from repro.estimators.bifocal import BifocalEstimator
from repro.estimators.boosting import BoostedEstimator
from repro.estimators.bounds import (
    JoinSizeBounds,
    clamp_estimate,
    join_size_bounds,
)
from repro.estimators.coverage_histogram import CoverageHistogramEstimator
from repro.estimators.cross_sampling import (
    CrossSamplingEstimator,
    SystematicSamplingEstimator,
)
from repro.estimators.hybrid import HybridEstimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.mre import cov_value, maximum_relative_error
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogram, PLHistogramEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.estimators.registry import available_estimators, make_estimator
from repro.estimators.semijoin_sampling import (
    SemijoinAncestorsEstimator,
    SemijoinDescendantsEstimator,
)
from repro.estimators.sketch import CountSketch, SketchEstimator
from repro.estimators.two_sample import TwoSampleEstimator
from repro.estimators.wavelet import WaveletEstimator

__all__ = [
    "BifocalEstimator",
    "BoostedEstimator",
    "CountSketch",
    "CoverageHistogramEstimator",
    "CrossSamplingEstimator",
    "Estimate",
    "Estimator",
    "HybridEstimator",
    "IMSamplingEstimator",
    "JoinSizeBounds",
    "PHHistogramEstimator",
    "PLHistogram",
    "PLHistogramEstimator",
    "PMSamplingEstimator",
    "SemijoinAncestorsEstimator",
    "SemijoinDescendantsEstimator",
    "SketchEstimator",
    "SystematicSamplingEstimator",
    "TwoSampleEstimator",
    "WaveletEstimator",
    "available_estimators",
    "clamp_estimate",
    "cov_value",
    "join_size_bounds",
    "make_estimator",
    "maximum_relative_error",
]
