"""Provable cardinality bounds for containment joins.

The structural features of Section 3.1 yield hard bounds that hold for
*any* data, without statistics:

* each descendant joins at most ``min(H, depth_A)`` ancestors, where
  ``depth_A`` is the maximum self-nesting depth of the ancestor set
  (1 for a no-overlap set), so ``|A ⋈ D| <= |D| * depth_A``;
* each ancestor joins at most |D| descendants, so ``|A ⋈ D| <= |A|·|D|``;
* a no-overlap ancestor set gives ``|A ⋈ D| <= |D|`` (the paper's
  adaptive-formula sanity check in Section 4.1).

``clamp_estimate`` projects any estimator output into the feasible
interval — a cheap, always-safe post-processor the ablation benchmark
evaluates.

:func:`containment_fanout_bounds` sharpens the structural bounds with
two *measured* per-step maxima (one O((|A|+|D|) log) pass over the
sorted region codes, still no statistics): the largest number of
descendants any single ancestor contains and the largest number of
ancestors any single descendant sits in.  These are the per-step
factors the pessimistic UES/AGM-style plan generator
(:class:`repro.optimizer.generator.BoundGenerator`) composes into
chain-segment upper bounds — guaranteed never below the true size, by
construction, because a maximum per-element fan-out bounds every sum of
per-element fan-outs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.nodeset import NodeSet
from repro.estimators.base import Estimate


@dataclass(frozen=True, slots=True)
class JoinSizeBounds:
    """A guaranteed enclosure ``lower <= |A ⋈ D| <= upper``."""

    lower: int
    upper: int

    def contains(self, size: float) -> bool:
        return self.lower <= size <= self.upper

    def clamp(self, size: float) -> float:
        return min(max(size, float(self.lower)), float(self.upper))


def join_size_bounds(ancestors: NodeSet, descendants: NodeSet) -> JoinSizeBounds:
    """Structural bounds on the containment join size.

    Costs O(|A|) for the nesting-depth scan; no statistics needed.
    """
    if len(ancestors) == 0 or len(descendants) == 0:
        return JoinSizeBounds(0, 0)
    per_descendant_cap = ancestors.max_nesting_depth
    upper = min(
        len(descendants) * per_descendant_cap,
        len(ancestors) * len(descendants),
    )
    return JoinSizeBounds(0, upper)


@dataclass(frozen=True, slots=True)
class FanoutBounds:
    """Measured per-step join fan-out maxima for one operand pair.

    Attributes:
        max_fanout: the largest number of descendants joined by any
            single ancestor (``max_a |{d : a contains d}|``).
        max_fanin: the largest number of ancestors joined by any single
            descendant (``max_d |{a : a contains d}|``); never exceeds
            the ancestor set's nesting depth.
    """

    max_fanout: int
    max_fanin: int


def containment_fanout_bounds(
    ancestors: NodeSet, descendants: NodeSet
) -> FanoutBounds:
    """Per-element join fan-out maxima, from the sorted region codes.

    Both counts test start-containment (``a.start < d.start < a.end``),
    which under the XML strict-nesting invariant equals full
    containment and for arbitrary interval data is a superset of it —
    so each maximum is always a valid *upper* bound on the true
    per-element fan-out.  Costs O((|A| + |D|) log) via searchsorted.
    """
    if len(ancestors) == 0 or len(descendants) == 0:
        return FanoutBounds(0, 0)
    a_starts = ancestors.starts
    d_starts = descendants.starts
    # Descendant starts strictly inside each ancestor's region.
    inside_lo = np.searchsorted(d_starts, a_starts, side="right")
    inside_hi = np.searchsorted(d_starts, ancestors.ends, side="left")
    max_fanout = int(np.max(inside_hi - inside_lo))
    # Ancestors whose region is still open at each descendant's start.
    started = np.searchsorted(a_starts, d_starts, side="left")
    ended = np.searchsorted(ancestors.sorted_ends, d_starts, side="left")
    max_fanin = int(np.max(started - ended))
    return FanoutBounds(max(0, max_fanout), max(0, max_fanin))


def refined_join_bound(ancestors: NodeSet, descendants: NodeSet) -> int:
    """The tightest structural upper bound this module can prove.

    Combines the Section 3.1 bounds of :func:`join_size_bounds` with the
    measured fan-out maxima: ``|A ⋈ D| <= min(structural, |A|·max_fanout,
    |D|·max_fanin)``.
    """
    structural = join_size_bounds(ancestors, descendants).upper
    if structural == 0:
        return 0
    fanout = containment_fanout_bounds(ancestors, descendants)
    return min(
        structural,
        len(ancestors) * fanout.max_fanout,
        len(descendants) * fanout.max_fanin,
    )


def clamp_estimate(
    estimate: Estimate, ancestors: NodeSet, descendants: NodeSet
) -> Estimate:
    """Project an estimate into the feasible interval.

    Returns a new :class:`Estimate` with the clamped value and a
    ``clamped`` flag in its details; never worsens the absolute error.
    """
    bounds = join_size_bounds(ancestors, descendants)
    clamped = bounds.clamp(estimate.value)
    return Estimate(
        clamped,
        estimate.estimator,
        mre=estimate.mre,
        details={
            **estimate.details,
            "clamped": clamped != estimate.value,
            "bound_upper": bounds.upper,
        },
    )
