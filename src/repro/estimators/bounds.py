"""Provable cardinality bounds for containment joins.

The structural features of Section 3.1 yield hard bounds that hold for
*any* data, without statistics:

* each descendant joins at most ``min(H, depth_A)`` ancestors, where
  ``depth_A`` is the maximum self-nesting depth of the ancestor set
  (1 for a no-overlap set), so ``|A ⋈ D| <= |D| * depth_A``;
* each ancestor joins at most |D| descendants, so ``|A ⋈ D| <= |A|·|D|``;
* a no-overlap ancestor set gives ``|A ⋈ D| <= |D|`` (the paper's
  adaptive-formula sanity check in Section 4.1).

``clamp_estimate`` projects any estimator output into the feasible
interval — a cheap, always-safe post-processor the ablation benchmark
evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nodeset import NodeSet
from repro.estimators.base import Estimate


@dataclass(frozen=True, slots=True)
class JoinSizeBounds:
    """A guaranteed enclosure ``lower <= |A ⋈ D| <= upper``."""

    lower: int
    upper: int

    def contains(self, size: float) -> bool:
        return self.lower <= size <= self.upper

    def clamp(self, size: float) -> float:
        return min(max(size, float(self.lower)), float(self.upper))


def join_size_bounds(ancestors: NodeSet, descendants: NodeSet) -> JoinSizeBounds:
    """Structural bounds on the containment join size.

    Costs O(|A|) for the nesting-depth scan; no statistics needed.
    """
    if len(ancestors) == 0 or len(descendants) == 0:
        return JoinSizeBounds(0, 0)
    per_descendant_cap = ancestors.max_nesting_depth
    upper = min(
        len(descendants) * per_descendant_cap,
        len(ancestors) * len(descendants),
    )
    return JoinSizeBounds(0, upper)


def clamp_estimate(
    estimate: Estimate, ancestors: NodeSet, descendants: NodeSet
) -> Estimate:
    """Project an estimate into the feasible interval.

    Returns a new :class:`Estimate` with the clamped value and a
    ``clamped`` flag in its details; never worsens the absolute error.
    """
    bounds = join_size_bounds(ancestors, descendants)
    clamped = bounds.clamp(estimate.value)
    return Estimate(
        clamped,
        estimate.estimator,
        mre=estimate.mre,
        details={
            **estimate.details,
            "clamped": clamped != estimate.value,
            "bound_upper": bounds.upper,
        },
    )
