"""The PH (positional histogram) baseline — Wu, Patel, Jagadish, EDBT 2002.

The prior work the paper compares against (Section 2.1).  Every element
maps to the 2D point ``(start, end)``; a ``g × g`` grid is laid over the
workspace and each cell stores how many elements of the set fall in it.
Estimation multiplies cell counts by a containment probability derived
from a *two-dimensional uniform* distribution assumption inside each cell:

* ancestor cell strictly left of and above the descendant cell → every
  pair joins (probability 1);
* shared start column or end row → factor 1/2 for that dimension;
* identical off-diagonal cell → 1/4 (the constant the paper criticizes);
* identical diagonal cell (the triangle ``start < end``) → 1/6.

When the ancestor set is known to have the *no-overlap* property the 2D
formula breaks down badly (each descendant can join at most one ancestor),
so the baseline switches to its coverage-histogram remedy — which itself
assumes global coverage statistics equal local ones.  Both behaviours are
reproduced here; the experiments exercise exactly the failure modes the
paper reports (XMARK Q6–Q8 blow up because ``parlist``/``listitem``
ancestors self-nest).
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro import perf
from repro.core.budget import SpaceBudget
from repro.obs import runtime as _obs
from repro.core.errors import EstimationError, ReproError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.estimators.coverage_histogram import CoverageHistogramEstimator
from repro.perf.cache import SummaryCache, resolve_cache

#: Containment probability for two points uniform in the same diagonal
#: cell (the triangle start < end): derived in closed form,
#: P = 4 ∫∫_{x<y} x(1-y) dx dy = 1/6.
DIAGONAL_CELL_PROBABILITY = 1.0 / 6.0


def grid_side(num_cells: int) -> int:
    """Grid side ``g`` for a cell budget: the largest square that fits."""
    if num_cells < 1:
        raise EstimationError(f"need >= 1 cell, got {num_cells}")
    return max(1, int(math.isqrt(num_cells)))


def cell_histogram_reference(
    node_set: NodeSet, workspace: Workspace, side: int
) -> Counter:
    """Per-element loop implementation of :func:`cell_histogram`."""
    cells: Counter = Counter()
    for element in node_set:
        column = workspace.bucket_of(element.start, side)
        row = workspace.bucket_of(element.end, side)
        cells[(column, row)] += 1
    return cells


def _grid_indices(
    positions: np.ndarray, workspace: Workspace, side: int
) -> np.ndarray:
    """Vectorized :meth:`Workspace.bucket_of` over a position array."""
    if positions.size and (
        int(positions.min()) < workspace.lo
        or int(positions.max()) > workspace.hi
    ):
        raise ReproError(
            f"positions outside workspace [{workspace.lo}, {workspace.hi}]"
        )
    width = workspace.width / side
    indices = ((positions - workspace.lo) / width).astype(np.int64)
    return np.minimum(indices, side - 1)


def cell_histogram(
    node_set: NodeSet, workspace: Workspace, side: int
) -> Counter:
    """Map ``(column, row) -> count`` of elements per grid cell.

    The column indexes the start dimension, the row the end dimension.
    """
    if perf.reference_kernels_enabled():
        return cell_histogram_reference(node_set, workspace, side)
    columns = _grid_indices(node_set.starts, workspace, side)
    rows = _grid_indices(node_set.ends, workspace, side)
    flat = columns * side + rows
    occupied, first_seen, counts = np.unique(
        flat, return_index=True, return_counts=True
    )
    # First-occurrence order keeps Counter iteration identical to the
    # reference loop, which pins the float accumulation order downstream.
    order = np.argsort(first_seen, kind="stable")
    return Counter(
        {
            (int(cell) // side, int(cell) % side): int(count)
            for cell, count in zip(occupied[order], counts[order])
        }
    )


def containment_probability(
    a_cell: tuple[int, int], d_cell: tuple[int, int]
) -> float:
    """P(a.start < d.start and d.end < a.end) under per-cell 2D uniformity."""
    a_col, a_row = a_cell
    d_col, d_row = d_cell
    if a_cell == d_cell:
        if a_col == a_row:  # diagonal cell: triangle-truncated
            return DIAGONAL_CELL_PROBABILITY
        return 0.25
    if a_col < d_col:
        p_start = 1.0
    elif a_col == d_col:
        p_start = 0.5
    else:
        return 0.0
    if a_row > d_row:
        p_end = 1.0
    elif a_row == d_row:
        p_end = 0.5
    else:
        return 0.0
    return p_start * p_end


def cell_histogram_cached(
    node_set: NodeSet,
    workspace: Workspace,
    side: int,
    cache: SummaryCache | None = None,
) -> Counter:
    """:func:`cell_histogram` through the summary cache."""
    cache = resolve_cache(cache)
    if cache is None:
        return cell_histogram(node_set, workspace, side)
    return cache.get_or_build(
        ("ph-cells", node_set.fingerprint, workspace, side),
        lambda: cell_histogram(node_set, workspace, side),
    )


def _positional_total_reference(cells_a: Counter, cells_d: Counter) -> float:
    """Cell-pair loop implementation of :func:`_positional_total`."""
    total = 0.0
    for a_cell, n_a in cells_a.items():
        for d_cell, n_d in cells_d.items():
            probability = containment_probability(a_cell, d_cell)
            if probability:
                total += probability * n_a * n_d
    return total


def _positional_total(cells_a: Counter, cells_d: Counter) -> float:
    """Σ over cell pairs of ``P(containment) · n_a · n_d``.

    Vectorized as a broadcast over the occupied-cell arrays; the final
    reduction goes through an ordered ``np.add.at`` accumulation in the
    same (ancestor-major) order as the reference loop, so the float total
    matches it bit for bit.
    """
    if perf.reference_kernels_enabled():
        return _positional_total_reference(cells_a, cells_d)
    if not cells_a or not cells_d:
        return 0.0
    a_cells = np.array(list(cells_a.keys()), dtype=np.int64)
    n_a = np.array(list(cells_a.values()), dtype=np.float64)
    d_cells = np.array(list(cells_d.keys()), dtype=np.int64)
    n_d = np.array(list(cells_d.values()), dtype=np.float64)
    a_col = a_cells[:, 0][:, None]
    a_row = a_cells[:, 1][:, None]
    d_col = d_cells[:, 0][None, :]
    d_row = d_cells[:, 1][None, :]
    p_start = np.where(
        a_col < d_col, 1.0, np.where(a_col == d_col, 0.5, 0.0)
    )
    p_end = np.where(a_row > d_row, 1.0, np.where(a_row == d_row, 0.5, 0.0))
    diagonal = (a_col == d_col) & (a_row == d_row) & (a_col == a_row)
    probability = np.where(
        diagonal, DIAGONAL_CELL_PROBABILITY, p_start * p_end
    )
    terms = (probability * n_a[:, None]) * n_d[None, :]
    accumulator = np.zeros(1)
    flat = terms.ravel()
    np.add.at(accumulator, np.zeros(flat.size, dtype=np.intp), flat)
    return float(accumulator[0])


class PHHistogramEstimator(Estimator):
    """The positional/coverage histogram baseline.

    Args:
        num_cells: total grid cells; mutually exclusive with ``budget``.
        budget: a byte budget converted at 8 bytes per cell.
        use_coverage: switch to the coverage remedy when the ancestor set
            is known to have the no-overlap property (the configuration
            used in the paper's experiments).
        overlap_known: whether the no-overlap property information of
            Table 2 is available; with False the raw 2D formula is always
            used — the configuration the paper calls "highly erroneous".
        coverage_mode: "global" (the criticized assumption, default) or
            "local" passed through to the coverage estimator.
        cache: summary cache for built cell histograms; defaults to the
            ambient cache installed by :func:`repro.perf.use_cache`.
    """

    name = "PH"

    def __init__(
        self,
        num_cells: int | None = None,
        budget: SpaceBudget | None = None,
        use_coverage: bool = True,
        overlap_known: bool = True,
        coverage_mode: str = "global",
        cache: SummaryCache | None = None,
    ) -> None:
        if (num_cells is None) == (budget is None):
            raise EstimationError("specify exactly one of num_cells or budget")
        self.num_cells = (
            num_cells if num_cells is not None else budget.ph_buckets
        )
        self.side = grid_side(self.num_cells)
        self.use_coverage = use_coverage
        self.overlap_known = overlap_known
        self.cache = cache
        self._coverage = CoverageHistogramEstimator(
            num_buckets=self.side, mode=coverage_mode, cache=cache
        )

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self.resolve_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name)
        if (
            self.use_coverage
            and self.overlap_known
            and not ancestors.has_overlap
        ):
            inner = self._coverage.estimate(ancestors, descendants, workspace)
            return Estimate(
                inner.value,
                self.name,
                details={"method": "coverage", **inner.details},
            )
        cache = resolve_cache(self.cache)
        with _obs.phase_timer(self.name, "summary_build"):
            cells_a = cell_histogram_cached(
                ancestors, workspace, self.side, cache
            )
            cells_d = cell_histogram_cached(
                descendants, workspace, self.side, cache
            )
        with _obs.phase_timer(self.name, "estimate"):
            total = _positional_total(cells_a, cells_d)
        return Estimate(
            total,
            self.name,
            details={"method": "positional", "grid_side": self.side},
        )
