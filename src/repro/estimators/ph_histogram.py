"""The PH (positional histogram) baseline — Wu, Patel, Jagadish, EDBT 2002.

The prior work the paper compares against (Section 2.1).  Every element
maps to the 2D point ``(start, end)``; a ``g × g`` grid is laid over the
workspace and each cell stores how many elements of the set fall in it.
Estimation multiplies cell counts by a containment probability derived
from a *two-dimensional uniform* distribution assumption inside each cell:

* ancestor cell strictly left of and above the descendant cell → every
  pair joins (probability 1);
* shared start column or end row → factor 1/2 for that dimension;
* identical off-diagonal cell → 1/4 (the constant the paper criticizes);
* identical diagonal cell (the triangle ``start < end``) → 1/6.

When the ancestor set is known to have the *no-overlap* property the 2D
formula breaks down badly (each descendant can join at most one ancestor),
so the baseline switches to its coverage-histogram remedy — which itself
assumes global coverage statistics equal local ones.  Both behaviours are
reproduced here; the experiments exercise exactly the failure modes the
paper reports (XMARK Q6–Q8 blow up because ``parlist``/``listitem``
ancestors self-nest).
"""

from __future__ import annotations

import math
from collections import Counter

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.estimators.coverage_histogram import CoverageHistogramEstimator

#: Containment probability for two points uniform in the same diagonal
#: cell (the triangle start < end): derived in closed form,
#: P = 4 ∫∫_{x<y} x(1-y) dx dy = 1/6.
DIAGONAL_CELL_PROBABILITY = 1.0 / 6.0


def grid_side(num_cells: int) -> int:
    """Grid side ``g`` for a cell budget: the largest square that fits."""
    if num_cells < 1:
        raise EstimationError(f"need >= 1 cell, got {num_cells}")
    return max(1, int(math.isqrt(num_cells)))


def cell_histogram(
    node_set: NodeSet, workspace: Workspace, side: int
) -> Counter:
    """Map ``(column, row) -> count`` of elements per grid cell.

    The column indexes the start dimension, the row the end dimension.
    """
    cells: Counter = Counter()
    for element in node_set:
        column = workspace.bucket_of(element.start, side)
        row = workspace.bucket_of(element.end, side)
        cells[(column, row)] += 1
    return cells


def containment_probability(
    a_cell: tuple[int, int], d_cell: tuple[int, int]
) -> float:
    """P(a.start < d.start and d.end < a.end) under per-cell 2D uniformity."""
    a_col, a_row = a_cell
    d_col, d_row = d_cell
    if a_cell == d_cell:
        if a_col == a_row:  # diagonal cell: triangle-truncated
            return DIAGONAL_CELL_PROBABILITY
        return 0.25
    if a_col < d_col:
        p_start = 1.0
    elif a_col == d_col:
        p_start = 0.5
    else:
        return 0.0
    if a_row > d_row:
        p_end = 1.0
    elif a_row == d_row:
        p_end = 0.5
    else:
        return 0.0
    return p_start * p_end


class PHHistogramEstimator(Estimator):
    """The positional/coverage histogram baseline.

    Args:
        num_cells: total grid cells; mutually exclusive with ``budget``.
        budget: a byte budget converted at 8 bytes per cell.
        use_coverage: switch to the coverage remedy when the ancestor set
            is known to have the no-overlap property (the configuration
            used in the paper's experiments).
        overlap_known: whether the no-overlap property information of
            Table 2 is available; with False the raw 2D formula is always
            used — the configuration the paper calls "highly erroneous".
        coverage_mode: "global" (the criticized assumption, default) or
            "local" passed through to the coverage estimator.
    """

    name = "PH"

    def __init__(
        self,
        num_cells: int | None = None,
        budget: SpaceBudget | None = None,
        use_coverage: bool = True,
        overlap_known: bool = True,
        coverage_mode: str = "global",
    ) -> None:
        if (num_cells is None) == (budget is None):
            raise EstimationError("specify exactly one of num_cells or budget")
        self.num_cells = (
            num_cells if num_cells is not None else budget.ph_buckets
        )
        self.side = grid_side(self.num_cells)
        self.use_coverage = use_coverage
        self.overlap_known = overlap_known
        self._coverage = CoverageHistogramEstimator(
            num_buckets=self.side, mode=coverage_mode
        )

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self.resolve_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name)
        if (
            self.use_coverage
            and self.overlap_known
            and not ancestors.has_overlap
        ):
            inner = self._coverage.estimate(ancestors, descendants, workspace)
            return Estimate(
                inner.value,
                self.name,
                details={"method": "coverage", **inner.details},
            )
        cells_a = cell_histogram(ancestors, workspace, self.side)
        cells_d = cell_histogram(descendants, workspace, self.side)
        total = 0.0
        for a_cell, n_a in cells_a.items():
            for d_cell, n_d in cells_d.items():
                probability = containment_probability(a_cell, d_cell)
                if probability:
                    total += probability * n_a * n_d
        return Estimate(
            total,
            self.name,
            details={"method": "positional", "grid_side": self.side},
        )
