"""PM-Est: position-model sampling (Algorithm 3).

Under the position model the join size is the inner product
``Σ_v PMA(A)[v] · PMD(D)[v]`` over the workspace (Theorem 2).  PM-Est
samples ``m`` positions uniformly from the workspace, probes both tables
at each position and scales the summed products by ``w / m``.

Theorem 4: the estimate is unbiased and X̂ = Θ(X) + O(w) with high
probability, where ``w = cmax - cmin + 1`` is the workspace width.  Since
``w >= |A| + |D|`` while IM-DA-Est's additive term is only O(|D|), PM-Est
needs more samples for the same accuracy — the inferiority the paper
predicts in Section 5.2 and confirms in Figure 8.

Probes: ``PMA[v]`` via the T-tree (or the rank oracle), ``PMD[v]`` via any
index on start positions — a B+-tree here (Section 5.3.1).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.index.bplus import start_position_index
from repro.index.stab import StabbingCounter
from repro.index.ttree import TTree

Backend = Literal["rank", "ttree"]


class PMSamplingEstimator(Estimator):
    """PM-Est (Algorithm 3).

    Args:
        num_samples: sample size ``m``; mutually exclusive with ``budget``.
        budget: byte budget converted at 8 bytes per sample.
        seed: RNG seed or generator.
        backend: probe structure for ``PMA[v]`` — "rank" (two binary
            searches) or "ttree".  ``PMD[v]`` always probes a B+-tree on
            the descendant start positions.
    """

    name = "PM"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
        backend: Backend = "rank",
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        if backend not in ("rank", "ttree"):
            raise EstimationError(f"unknown backend {backend!r}")
        self.backend: Backend = backend
        self._rng = make_rng(seed)

    def estimate(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None = None,
    ) -> Estimate:
        workspace = self.resolve_workspace(ancestors, descendants, workspace)
        if len(ancestors) == 0 or len(descendants) == 0:
            return Estimate(0.0, self.name, details={"samples": 0})
        m = self.num_samples
        positions = self._rng.integers(
            workspace.lo, workspace.hi + 1, size=m
        )
        start_index = start_position_index(
            [int(s) for s in descendants.starts]
        )
        if self.backend == "ttree":
            ttree = TTree(ancestors)
            pma = np.array(
                [ttree.count(int(v)) for v in positions], dtype=np.int64
            )
        else:
            pma = StabbingCounter(ancestors).count_many(positions)
        pmd = np.array(
            [1 if int(v) in start_index else 0 for v in positions],
            dtype=np.int64,
        )
        total = int(np.dot(pma, pmd))
        value = float(total) * workspace.width / m
        return Estimate(
            value,
            self.name,
            details={
                "samples": m,
                "backend": self.backend,
                "workspace_width": workspace.width,
                "hits": int(pmd.sum()),
            },
        )
