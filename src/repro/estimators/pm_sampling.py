"""PM-Est: position-model sampling (Algorithm 3).

Under the position model the join size is the inner product
``Σ_v PMA(A)[v] · PMD(D)[v]`` over the workspace (Theorem 2).  PM-Est
samples ``m`` positions uniformly from the workspace, probes both tables
at each position and scales the summed products by ``w / m``.

Theorem 4: the estimate is unbiased and X̂ = Θ(X) + O(w) with high
probability, where ``w = cmax - cmin + 1`` is the workspace width.  Since
``w >= |A| + |D|`` while IM-DA-Est's additive term is only O(|D|), PM-Est
needs more samples for the same accuracy — the inferiority the paper
predicts in Section 5.2 and confirms in Figure 8.

Probes: ``PMA[v]`` via the T-tree (or the rank oracle), ``PMD[v]`` via an
index on start positions (Section 5.3.1).  The fast path answers the
membership probe with one ``searchsorted`` over the already-sorted start
array (:func:`repro.index.start_membership_many`); the B+-tree build and
per-position lookup of the paper's description are retained as its
reference implementation and reselected under
:func:`repro.perf.reference_kernels`.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.estimators.sampling_base import SamplingEstimator
from repro.kernels import fused
from repro.obs import runtime as _obs
from repro.perf import IndexCache, resolve_index_cache

Backend = Literal["rank", "ttree"]


class PMSamplingEstimator(SamplingEstimator):
    """PM-Est (Algorithm 3).

    Args:
        num_samples: sample size ``m``; mutually exclusive with ``budget``.
        budget: byte budget converted at 8 bytes per sample.
        seed: RNG seed or generator.
        backend: probe structure for ``PMA[v]`` — "rank" (two binary
            searches) or "ttree".  ``PMD[v]`` probes the descendant start
            positions (vectorized membership; a B+-tree in reference
            mode).
        index_cache: probe-index cache; defaults to the ambient one
            (:func:`repro.perf.use_index_cache`), if any.
    """

    name = "PM"

    def __init__(
        self,
        num_samples: int | None = None,
        budget: SpaceBudget | None = None,
        seed: SeedLike = None,
        backend: Backend = "rank",
        index_cache: IndexCache | None = None,
    ) -> None:
        if (num_samples is None) == (budget is None):
            raise EstimationError(
                "specify exactly one of num_samples or budget"
            )
        self.num_samples = (
            num_samples if num_samples is not None else budget.samples
        )
        if self.num_samples < 1:
            raise EstimationError(f"need >= 1 sample, got {self.num_samples}")
        if backend not in ("rank", "ttree"):
            raise EstimationError(f"unknown backend {backend!r}")
        self.backend: Backend = backend
        self._rng = make_rng(seed)
        self._index_cache = index_cache

    def _prepare_workspace(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
    ) -> Workspace:
        return self.resolve_workspace(ancestors, descendants, workspace)

    def _run_trials(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
        rngs: Sequence[np.random.Generator],
    ) -> list[Estimate]:
        assert workspace is not None  # _prepare_workspace resolved it
        m = self.num_samples
        position_rows = self._draw_uniform_matrix(
            rngs, workspace.lo, workspace.hi + 1, m
        )
        dots, hits = fused.pm_dot_hits(
            ancestors,
            descendants,
            position_rows.ravel(),
            len(rngs),
            m,
            probe_backend=self.backend,
            cache=resolve_index_cache(self._index_cache),
            name=self.name,
        )
        with _obs.phase_timer(self.name, "scale"):
            return [
                Estimate(
                    float(dots[i]) * workspace.width / m,
                    self.name,
                    details={
                        "samples": m,
                        "backend": self.backend,
                        "workspace_width": workspace.width,
                        "hits": int(hits[i]),
                    },
                )
                for i in range(len(rngs))
            ]
