"""Budgeted qa runner: generate, check, shrink, report, replay.

The runner drives the oracles in :mod:`repro.qa.oracles` over a stream
of seeded random cases until a wall-clock budget expires, shrinks every
failure with :func:`repro.qa.shrink.shrink_case`, confirms the shrunk
reproducer by replaying it, and emits a JSON report.  The report's
``findings[*].reproducer`` blocks are self-contained: feed one back
through :func:`replay` (or ``python -m repro qa --replay report.json``)
to re-execute the exact failing oracle on the exact failing operands.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.qa.generators import Case, random_case
from repro.qa.oracles import ORACLES
from repro.qa.shrink import shrink_case
from repro.qa.stats import run_statistical_gates

QA_REPORT_SCHEMA_VERSION = 1

#: Upper bound on generated document size during fuzzing.
QA_MAX_NODES = 80


@dataclass
class Finding:
    """One oracle failure, with its original and minimized reproducers."""

    oracle: str
    case_seed: int
    message: str
    reproducer: dict[str, Any]
    shrunk: bool = False
    shrink_checks: int = 0
    confirmed: bool = False
    original_sizes: tuple[int, int] = (0, 0)
    shrunk_sizes: tuple[int, int] = (0, 0)
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "oracle": self.oracle,
            "case_seed": self.case_seed,
            "message": self.message,
            "confirmed": self.confirmed,
            "shrunk": self.shrunk,
            "shrink_checks": self.shrink_checks,
            "original_sizes": list(self.original_sizes),
            "shrunk_sizes": list(self.shrunk_sizes),
            "reproducer": self.reproducer,
            "detail": self.detail,
        }


def _oracle_fails(
    oracle: Callable[[Case], None], case: Case
) -> str | None:
    """The failure message if ``oracle`` rejects ``case``, else None."""
    try:
        oracle(case)
    except Exception as error:
        return f"{type(error).__name__}: {error}"
    return None


def _investigate(
    name: str,
    oracle: Callable[[Case], None],
    case: Case,
    message: str,
    max_shrink_checks: int,
) -> Finding:
    """Shrink a failing case and confirm the minimized reproducer."""

    def still_fails(candidate: Case) -> bool:
        return _oracle_fails(oracle, candidate) is not None

    shrunk_case, checks = shrink_case(
        case, still_fails, max_checks=max_shrink_checks
    )
    final_message = _oracle_fails(oracle, shrunk_case)
    if final_message is None:
        # Shrinking must never lose the bug; fall back to the original.
        shrunk_case, final_message = case, message
    return Finding(
        oracle=name,
        case_seed=case.seed,
        message=final_message,
        reproducer={"oracle": name, "case": shrunk_case.to_dict()},
        shrunk=len(shrunk_case.ancestors) + len(shrunk_case.descendants)
        < len(case.ancestors) + len(case.descendants),
        shrink_checks=checks,
        confirmed=_oracle_fails(oracle, shrunk_case) is not None,
        original_sizes=(len(case.ancestors), len(case.descendants)),
        shrunk_sizes=(len(shrunk_case.ancestors), len(shrunk_case.descendants)),
    )


def run_qa(
    budget_s: float,
    seed: int,
    oracles: Mapping[str, Callable[[Case], None]] | None = None,
    run_gates: bool = True,
    max_nodes: int = QA_MAX_NODES,
    max_shrink_checks: int = 250,
    min_cases: int = 1,
) -> dict[str, Any]:
    """Run the qa campaign and return the JSON-ready report dict.

    Per-oracle deduplication: once an oracle has produced a finding it is
    retired for the rest of the campaign, so a systematic bug yields one
    minimized reproducer instead of drowning the report.
    """
    oracles = dict(ORACLES if oracles is None else oracles)
    started = time.monotonic()
    deadline = started + budget_s

    gates = run_statistical_gates() if run_gates else []
    gate_failures = [g for g in gates if not g.passed]

    findings: list[Finding] = []
    active = dict(oracles)
    oracle_runs = {name: 0 for name in oracles}
    cases_run = 0
    while active and (
        cases_run < min_cases or time.monotonic() < deadline
    ):
        case_seed = seed + cases_run
        try:
            case = random_case(case_seed, max_nodes=max_nodes)
        except Exception:
            # A generator crash is itself a finding, not a skip.
            findings.append(
                Finding(
                    oracle="generator",
                    case_seed=case_seed,
                    message=traceback.format_exc(limit=3),
                    reproducer={"oracle": "generator", "seed": case_seed},
                    confirmed=True,
                )
            )
            break
        cases_run += 1
        for name in list(active):
            oracle = active[name]
            message = _oracle_fails(oracle, case)
            oracle_runs[name] += 1
            if message is None:
                continue
            findings.append(
                _investigate(name, oracle, case, message, max_shrink_checks)
            )
            del active[name]
        if time.monotonic() >= deadline and cases_run >= min_cases:
            break

    confirmed = sum(1 for f in findings if f.confirmed) + len(gate_failures)
    return {
        "schema_version": QA_REPORT_SCHEMA_VERSION,
        "seed": seed,
        "budget_s": budget_s,
        "elapsed_s": round(time.monotonic() - started, 3),
        "cases_run": cases_run,
        "oracle_runs": oracle_runs,
        "confirmed_findings": confirmed,
        "findings": [f.to_dict() for f in findings],
        "gates": [g.to_dict() for g in gates],
    }


def replay(
    reproducer: Mapping[str, Any],
    oracles: Mapping[str, Callable[[Case], None]] | None = None,
) -> str | None:
    """Re-run a reproducer block; the failure message, or None if clean.

    Accepts either a single ``findings[*].reproducer`` block or a whole
    qa report (in which case every finding is replayed and the first
    failure message is returned).
    """
    oracles = dict(ORACLES if oracles is None else oracles)
    if "findings" in reproducer:
        for finding in reproducer["findings"]:
            message = replay(finding["reproducer"], oracles)
            if message is not None:
                return message
        return None
    name = reproducer["oracle"]
    if name == "generator":
        try:
            random_case(int(reproducer["seed"]))
        except Exception as error:
            return f"{type(error).__name__}: {error}"
        return None
    if name not in oracles:
        raise KeyError(f"unknown oracle {name!r} in reproducer")
    case = Case.from_dict(reproducer["case"])
    return _oracle_fails(oracles[name], case)


def replay_file(path: str) -> str | None:
    with open(path, encoding="utf-8") as handle:
        return replay(json.load(handle))
