"""Differential and metamorphic oracles for the qa runner.

Every oracle takes one generated :class:`~repro.qa.generators.Case` and
raises :class:`OracleFailure` (with a human-readable message) when the
code under test violates its contract.  The runner treats *any*
exception escaping an oracle as a failure, shrinks the case against it,
and records a reproducer.

The oracles cover the layers named in the ROADMAP's production story:

* ``exact-join`` — the three pair-producing join algorithms agree with
  each other and with the count-only size.
* ``estimator-contract`` — every registered estimator returns a finite,
  non-negative estimate that survives the versioned wire round-trip, or
  rejects the input with a *typed* :class:`~repro.core.errors.ReproError`.
* ``batched-vs-sequential`` — ``estimate_trials`` / ``estimate_across``
  are bit-for-bit equal to per-call ``estimate()`` streams.
* ``cached-vs-uncached`` — ambient SummaryCache/IndexCache installation
  never changes a value.
* ``service-vs-direct`` — ``repro.serve()`` answers match direct
  ``repro.api.estimate`` calls bit-for-bit, and degraded answers keep
  the ladder's invariants (always answered, flagged, bound encloses the
  exact size).
* ``fused-vs-reference`` — the fused single-pass kernels
  (:mod:`repro.kernels.fused`) equal the paper's per-call
  index_build→probe composition bit-for-bit, on every probe backend,
  every available kernel backend (numpy, numba when installed) and
  every cache tier.
* ``wire-roundtrip`` — the binary zero-copy wire format and the JSON
  compatibility form round-trip every request/response exactly, and
  the service answers both formats of one seeded request identically.
* ``feedback-transparency`` — a service with a router and feedback
  store attached (but no correction model) answers every request
  bit-identically to direct ``repro.api.estimate`` with the routed
  arm's configuration — the closed loop observes and redirects, it
  never changes a value — and every recorded outcome carries the
  pre-registered exact size.
* ``sharded-vs-unsharded`` — partitioning the operands into a random
  number of shards and merging the per-shard summaries
  (:mod:`repro.shard`) reproduces the unsharded statistics: integer
  counts bit-exactly, float ``total_length`` sums to 1e-12 relative
  (reassociation at shard seams only), merged intervals exactly.
* ``incremental-vs-rebuild`` — churning the case's merged element pool
  through a seeded :class:`~repro.stream.MutationFeed` into a
  :class:`~repro.stream.LiveWorkspace` keeps every maintained synopsis
  (PL both roles, PH cell grid, dynamic T-tree stabbing counts,
  coverage bounds, the node set itself) identical to a from-scratch
  rebuild after *every* batch — integer statistics bit-exact, float
  ``total_length`` to 1e-12 relative — and the reservoir a subset of
  the live population.
* ``planner-invariance`` — the join-order planner's output is a pure
  function of (chain, generator config): calling ``describe()`` or
  repeating ``setup_for_workload`` before/around planning never changes
  the plan, and the plan survives its wire round-trip.
* ``metamorphic`` — region-code translation/dilation invariance,
  ancestor-union additivity, duplication scaling, A/D disjointness.
* ``parser-fuzz`` / ``validator-fuzz`` — the invalid-input corpus is
  rejected with typed errors; random valid XML round-trips through the
  serializer with identical region codes.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

import numpy as np

from repro import api
from repro.core.element import Element
from repro.core.errors import ReproError
from repro.core.nodeset import NodeSet
from repro.core.rng import make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.estimators.bounds import join_size_bounds
from repro.estimators.registry import available_estimators, make_estimator
from repro.estimators.sampling_base import SamplingEstimator
from repro.join import (
    containment_join_size,
    merge_join,
    nested_loop_join,
    stack_tree_join,
)
from repro.perf import IndexCache, SummaryCache, use_cache, use_index_cache
from repro.qa.generators import (
    Case,
    disjoint_operands,
    invalid_element_corpus,
    invalid_xml_corpus,
    random_xml,
)
from repro.service.engine import EstimationService
from repro.service.request import EstimateRequest
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import to_xml

#: Methods whose estimate is a pure function of (operands, config).
DETERMINISTIC_METHODS = frozenset({"PL", "PH", "COV", "WAVELET"})

#: Relative tolerance for metamorphic equalities on deterministic
#: estimators: translation/dilation shift the float bucket boundaries,
#: so the last few ulps may differ even though the computation is the
#: same; anything beyond 1e-6 relative is a real bucket-assignment bug,
#: not rounding.
METAMORPHIC_RTOL = 1e-6


class OracleFailure(AssertionError):
    """An oracle's contract was violated by the case under test."""


def _fail(oracle: str, message: str) -> None:
    raise OracleFailure(f"[{oracle}] {message}")


def method_config(
    method: str, case: Case, seed: int = 11
) -> dict[str, Any] | None:
    """A valid configuration for ``method`` on this case's operand sizes.

    Returns None when the method cannot be configured meaningfully for
    the case (never happens with the current registry, kept for
    forward compatibility).  Sample counts are clamped to the smaller
    operand so without-replacement draws are always legal.
    """
    samples = max(1, min(len(case.ancestors), len(case.descendants)) // 2)
    if method == "PL":
        return {"num_buckets": 8}
    if method == "PH":
        return {"num_cells": 5}
    if method == "COV":
        return {"num_buckets": 8}
    if method == "WAVELET":
        return {"num_coefficients": 8}
    if method == "SKETCH":
        return {"num_counters": 64, "seed": seed}
    if method == "HYBRID":
        return {"num_buckets": 8, "num_samples": samples, "seed": seed}
    # The sampling family shares the num_samples/seed shape.
    return {"num_samples": samples, "seed": seed}


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------


def check_exact_join(case: Case) -> None:
    """The three exact joins and the count-only size must agree."""
    a, d = case.ancestors, case.descendants

    def key(pair):
        ancestor, descendant = pair
        return (ancestor.start, ancestor.end, descendant.start)

    naive = sorted(nested_loop_join(a, d), key=key)
    merge = sorted(merge_join(a, d), key=key)
    stack = sorted(stack_tree_join(a, d), key=key)
    if naive != merge:
        _fail("exact-join", "merge_join disagrees with nested_loop_join")
    if naive != stack:
        _fail("exact-join", "stack_tree_join disagrees with nested_loop_join")
    size = containment_join_size(a, d)
    if size != len(naive):
        _fail(
            "exact-join",
            f"containment_join_size={size} but joins produce "
            f"{len(naive)} pairs",
        )
    bounds = join_size_bounds(a, d)
    if not (bounds.lower <= size <= bounds.upper):
        _fail(
            "exact-join",
            f"exact size {size} outside structural bounds "
            f"[{bounds.lower}, {bounds.upper}]",
        )


def check_estimator_contract(case: Case) -> None:
    """Every registered estimator answers sanely on a valid input."""
    for method in available_estimators():
        config = method_config(method, case)
        if config is None:
            continue
        try:
            result = api.estimate(
                case.ancestors,
                case.descendants,
                method,
                workspace=case.workspace,
                **config,
            )
        except ReproError:
            # A typed rejection is a legal contract outcome.
            continue
        except Exception as error:  # untyped crash = finding
            _fail(
                "estimator-contract",
                f"{method} raised untyped {type(error).__name__}: {error}",
            )
        value = result.value
        if not math.isfinite(value) or value < 0.0:
            _fail(
                "estimator-contract",
                f"{method} returned invalid value {value!r}",
            )
        rebuilt = Estimate.from_dict(result.to_dict())
        if rebuilt.value != value or rebuilt.estimator != result.estimator:
            _fail(
                "estimator-contract",
                f"{method} estimate does not survive the wire "
                f"round-trip: {value!r} -> {rebuilt.value!r}",
            )


def check_summary_geometry(case: Case) -> None:
    """``bucket_of`` agrees with the ``buckets()`` tiling bit-for-bit.

    The histogram estimators' correctness rests on one geometric fact:
    the ``count`` equal-width buckets tile ``[lo, hi]`` exactly and
    ``bucket_of(p)`` returns the unique tile containing ``p``.  Checking
    the two public APIs against each other catches off-by-one bucket
    boundary bugs that the value-level oracles cannot see (a consistent
    shift hits the cached and uncached paths identically).
    """
    w = case.workspace
    positions = sorted(
        {
            int(p)
            for nodes in (case.ancestors, case.descendants)
            for arr in (nodes.starts, nodes.sorted_ends)
            for p in arr
            if w.contains(int(p))
        }
        | {w.lo, w.hi}
    )
    for count in (1, 2, 3, 7):
        buckets = w.buckets(count)
        if len(buckets) != count:
            _fail(
                "summary-geometry",
                f"buckets({count}) returned {len(buckets)} buckets",
            )
        # The right edge is built incrementally (lo + count * (width /
        # count)), so it may differ from lo + width by float rounding.
        right_edge_ok = math.isclose(
            buckets[-1].wse, w.lo + w.width, rel_tol=METAMORPHIC_RTOL
        )
        if buckets[0].wss != w.lo or not right_edge_ok:
            _fail(
                "summary-geometry",
                f"buckets({count}) do not span the workspace: "
                f"[{buckets[0].wss}, {buckets[-1].wse}) vs "
                f"[{w.lo}, {w.lo + w.width})",
            )
        for left, right in zip(buckets, buckets[1:]):
            if left.wse != right.wss:
                _fail(
                    "summary-geometry",
                    f"buckets({count}) leave a gap between "
                    f"{left.index} and {right.index}",
                )
        for p in positions:
            index = w.bucket_of(p, count)
            bucket = buckets[index]
            inside = bucket.wss <= p < bucket.wse or (
                index == count - 1 and p <= w.hi
            )
            if not inside:
                _fail(
                    "summary-geometry",
                    f"bucket_of({p}, {count}) = {index} but bucket "
                    f"{index} is [{bucket.wss}, {bucket.wse})",
                )


def check_estimate_vs_exact(case: Case) -> None:
    """Full-sample IM collapses to the exact size on disjoint operands.

    With ``num_samples >= |D|`` and without replacement the IM sample is
    the whole descendant set and the scale factor is 1, so the estimate
    is ``sum_d stab(d.start)`` — which equals the exact join size
    whenever no element sits on both sides (the paper's model; a shared
    element's own start stabs its own interval while the strict join
    excludes the self-pair).  This is a bit-for-bit differential check
    of the entire stab-probe machinery against the join algorithms.
    """
    a, d = disjoint_operands(case)
    if set(a.elements) & set(d.elements):
        # Every descendant is also an ancestor; the identity's
        # precondition cannot be met for this case.
        return
    exact = containment_join_size(a, d)
    for backend in ("rank", "ttree", "xrtree"):
        value = make_estimator(
            "IM", num_samples=len(d), seed=1, backend=backend
        ).estimate(a, d, case.workspace).value
        if value != float(exact):
            _fail(
                "estimate-vs-exact",
                f"full-sample IM[{backend}] gave {value!r}, exact is "
                f"{exact}",
            )


def check_batched_vs_sequential(case: Case, trials: int = 4) -> None:
    """``estimate_trials``/``estimate_across`` ≡ sequential ``estimate``.

    Bit-for-bit: same values in the same order, for every registered
    sampling estimator, both for one instance batched over ``trials``
    and for ``trials`` fresh instances batched across.
    """
    a, d, w = case.ancestors, case.descendants, case.workspace
    for method in available_estimators():
        config = method_config(method, case)
        probe = make_estimator(method, **config)
        if not isinstance(probe, SamplingEstimator):
            continue
        sequential = [
            make_estimator(method, **config).estimate(a, d, w).value
            for __ in range(trials)
        ]
        # estimate_trials shares one generator across trials; the
        # sequential twin must consume the same stream.
        seq_stream_est = make_estimator(method, **config)
        seq_stream = [
            seq_stream_est.estimate(a, d, w).value for __ in range(trials)
        ]
        batched = make_estimator(method, **config).estimate_trials(
            a, d, trials, w
        )
        if [r.value for r in batched] != seq_stream:
            _fail(
                "batched-vs-sequential",
                f"{method}.estimate_trials({trials}) != sequential "
                f"estimate() stream",
            )
        across = SamplingEstimator.estimate_across(
            [make_estimator(method, **config) for __ in range(trials)],
            a,
            d,
            w,
        )
        if [r.value for r in across] != sequential:
            _fail(
                "batched-vs-sequential",
                f"{method}.estimate_across over {trials} fresh instances "
                f"!= their solo estimates",
            )


def check_cached_vs_uncached(case: Case) -> None:
    """Ambient caches must never change a value, only its cost."""
    a, d, w = case.ancestors, case.descendants, case.workspace
    for method in available_estimators():
        config = method_config(method, case)
        try:
            plain = api.estimate(a, d, method, workspace=w, **config)
        except ReproError:
            continue
        with use_cache(SummaryCache()), use_index_cache(IndexCache()):
            warm_cache = api.estimate(a, d, method, workspace=w, **config)
            # Second call hits whatever the first built.
            reheat = api.estimate(a, d, method, workspace=w, **config)
        if warm_cache.value != plain.value or reheat.value != plain.value:
            _fail(
                "cached-vs-uncached",
                f"{method}: uncached {plain.value!r} vs cached "
                f"{warm_cache.value!r} / cache-hit {reheat.value!r}",
            )


def check_service_vs_direct(case: Case) -> None:
    """``repro.serve`` parity and degraded-answer invariants."""
    a, d = case.ancestors, case.descendants
    methods = ["PL", "IM", "PM"]
    requests = [
        EstimateRequest(
            ancestors=a,
            descendants=d,
            method=method,
            workspace=case.workspace,
            config=dict(method_config(method, case)),
        )
        for method in methods
    ]
    expected = [
        api.estimate(
            r.ancestors,
            r.descendants,
            r.method,
            workspace=r.workspace,
            **r.config,
        ).value
        for r in requests
    ]
    with EstimationService(workers=0) as service:
        responses = service.map(requests, timeout=60.0)
        if [r.estimate.value for r in responses] != expected:
            _fail(
                "service-vs-direct",
                "service answers differ from direct api.estimate "
                f"({[r.estimate.value for r in responses]} vs {expected})",
            )
        if any(r.status != "ok" or r.ladder_level != 0 for r in responses):
            _fail(
                "service-vs-direct",
                "undegraded request did not resolve at ladder level 0",
            )
    # Degraded path: an already-expired deadline must still be answered,
    # flagged, and the bound rung must enclose the exact size.
    exact = containment_join_size(a, d)
    with EstimationService(workers=0) as service:
        future = service.submit(
            a, d, "IM", workspace=case.workspace,
            deadline_s=1e-9,
            **method_config("IM", case),
        )
        service.help_drain((future,))
        degraded = future.result(timeout=60.0)
    if degraded.status not in ("degraded", "shed"):
        _fail(
            "service-vs-direct",
            f"expired deadline answered with status {degraded.status!r}",
        )
    if not degraded.degraded or degraded.degraded_reason is None:
        _fail("service-vs-direct", "degraded response not flagged")
    if degraded.ladder_name == "bound":
        details = degraded.estimate.details
        if not (
            details["bound_lower"] <= exact <= details["bound_upper"]
        ):
            _fail(
                "service-vs-direct",
                f"bound rung [{details['bound_lower']}, "
                f"{details['bound_upper']}] does not enclose exact "
                f"size {exact}",
            )
        if degraded.estimate.value != float(details["bound_upper"]):
            _fail(
                "service-vs-direct",
                "bound rung estimate is not the upper bound",
            )


def check_feedback_transparency(case: Case) -> None:
    """The closed loop never changes a value, only who computes it.

    A service with a router and feedback store attached (correction
    *off*) must answer every request bit-identically to a direct
    ``api.estimate`` call with the routed arm's own configuration (the
    BOUND arm is the structural upper bound) — routing redirects, it
    does not perturb.  Every outcome must land in the store carrying
    the pre-registered exact size.
    """
    from repro.estimators.bounds import join_size_bounds
    from repro.feedback.store import FeedbackStore
    from repro.router.base import BOUND_METHOD, UCB1Router

    a, d, w = case.ancestors, case.descendants, case.workspace
    if len(a) == 0 or len(d) == 0:
        return
    samples = max(1, min(len(a), len(d)) // 2)
    # Arms pin their own seeds so a direct call reproduces any routed
    # answer exactly, whatever arm the bandit picks.
    candidates = {
        "PL": {"num_buckets": 8},
        "IM": {"num_samples": samples, "seed": 11},
        "PM": {"num_samples": samples, "seed": 11},
        BOUND_METHOD: {},
    }
    exact = containment_join_size(a, d)
    store = FeedbackStore()
    store.observe_truth(a, d, float(exact))
    router = UCB1Router(candidates, seed=case.seed)
    rounds = 2 * len(router.arms)
    with EstimationService(
        workers=0, router=router, feedback=store, memoize=False
    ) as service:
        for __ in range(rounds):
            response = service.estimate(
                a, d, "IM", workspace=w, num_samples=samples, seed=11
            )
            routed = response.routed_method
            if routed not in candidates:
                _fail(
                    "feedback-transparency",
                    f"response routed to unknown arm {routed!r}",
                )
            if response.status != "ok":
                _fail(
                    "feedback-transparency",
                    f"routed request resolved {response.status!r} "
                    f"(reason {response.degraded_reason!r}), not ok",
                )
            if routed == BOUND_METHOD:
                expected = float(join_size_bounds(a, d).upper)
            else:
                expected = api.estimate(
                    a, d, routed, workspace=w, **candidates[routed]
                ).value
            if response.estimate.value != expected:
                _fail(
                    "feedback-transparency",
                    f"routed {routed} answer {response.estimate.value!r} "
                    f"!= direct estimate {expected!r}",
                )
    records = list(store)
    if len(records) != rounds:
        _fail(
            "feedback-transparency",
            f"store holds {len(records)} records for {rounds} requests",
        )
    if any(record.exact != float(exact) for record in records):
        _fail(
            "feedback-transparency",
            "a served record is missing the pre-registered exact size",
        )


def check_sharded_vs_unsharded(case: Case) -> None:
    """Per-shard summaries merged over a random shard count reproduce
    the unsharded statistics (:mod:`repro.shard`'s exactness contract)."""
    from repro.estimators.coverage_histogram import merged_interval_bounds
    from repro.estimators.pl_histogram import (
        build_ancestor_cached,
        build_descendant_cached,
    )
    from repro.shard import (
        build_shard_statistics,
        merge_counts,
        merge_intervals,
        merge_pl_histograms,
        shard_node_set,
    )

    a, d, w = case.ancestors, case.descendants, case.workspace
    rng = make_rng(case.seed ^ 0x5A4D)
    num_shards = int(rng.integers(2, 7))
    cache = SummaryCache()

    # The plan must partition the operand: concatenating shard arrays
    # in order reproduces the parent arrays exactly.
    for node_set in (a, d):
        shards = shard_node_set(node_set, num_shards, cache=cache)
        if sum(len(s) for s in shards) != len(node_set):
            _fail(
                "sharded-vs-unsharded",
                f"shard sizes of {node_set.name} do not sum to "
                f"{len(node_set)}",
            )
        rebuilt = np.concatenate([s.starts for s in shards])
        if not np.array_equal(rebuilt, node_set.starts):
            _fail(
                "sharded-vs-unsharded",
                f"shard concatenation does not rebuild {node_set.name}",
            )

    statistics = build_shard_statistics(
        a, d, w, num_shards, num_buckets=8, cache=cache
    )

    exact = containment_join_size(a, d)
    merged_count = merge_counts([s.join_count for s in statistics])
    if merged_count != exact:
        _fail(
            "sharded-vs-unsharded",
            f"merged join count {merged_count} != exact {exact} "
            f"({num_shards} shards)",
        )

    global_merged = merged_interval_bounds(a)
    remerged = merge_intervals([s.merged for s in statistics])
    if not np.array_equal(remerged, global_merged):
        _fail(
            "sharded-vs-unsharded",
            f"merged intervals differ after {num_shards}-way shard merge",
        )

    for role, build, operand in (
        ("ancestor", build_ancestor_cached, a),
        ("descendant", build_descendant_cached, d),
    ):
        unsharded = build(operand, w, 8, cache=cache)
        merged = merge_pl_histograms(
            [
                getattr(s, f"{role}_histogram")
                for s in statistics
            ]
        )
        for mine, theirs in zip(merged.buckets, unsharded.buckets):
            if mine.n != theirs.n:
                _fail(
                    "sharded-vs-unsharded",
                    f"{role} bucket {mine.index} count "
                    f"{mine.n} != {theirs.n}",
                )
            # total_length reassociates at shard seams only; beyond
            # 1e-12 relative is a real merge bug, not float rounding.
            tolerance = 1e-12 * max(1.0, abs(theirs.total_length))
            if abs(mine.total_length - theirs.total_length) > tolerance:
                _fail(
                    "sharded-vs-unsharded",
                    f"{role} bucket {mine.index} total_length "
                    f"{mine.total_length!r} != {theirs.total_length!r}",
                )


# ----------------------------------------------------------------------
# Metamorphic transforms
# ----------------------------------------------------------------------


def _transform_case(
    case: Case, fn: Callable[[int], int]
) -> tuple[NodeSet, NodeSet, Workspace]:
    def remap(elements: Sequence[Element]) -> list[Element]:
        return [
            Element(e.tag, fn(e.start), fn(e.end), e.level)
            for e in elements
        ]

    a = NodeSet(remap(case.ancestors.elements), name="A")
    d = NodeSet(remap(case.descendants.elements), name="D")
    return a, d, Workspace(fn(case.workspace.lo), fn(case.workspace.hi))


def _deterministic_values(
    a: NodeSet, d: NodeSet, w: Workspace, case: Case
) -> dict[str, float]:
    values = {}
    for method in sorted(DETERMINISTIC_METHODS):
        config = method_config(method, case)
        values[method] = api.estimate(
            a, d, method, workspace=w, **config
        ).value
    return values


def check_metamorphic(case: Case) -> None:
    """Translation/dilation invariance, union additivity, duplication
    scaling, and disjointness."""
    a, d, w = case.ancestors, case.descendants, case.workspace
    rng = make_rng(case.seed ^ 0x5EED)
    exact = containment_join_size(a, d)
    base_values = _deterministic_values(a, d, w, case)

    shift = int(rng.integers(1, 10_000))
    scale = int(rng.integers(2, 7))
    for label, fn in (
        ("translation", lambda p: p + shift),
        ("dilation", lambda p: p * scale),
    ):
        ta, td, tw = _transform_case(case, fn)
        t_exact = containment_join_size(ta, td)
        if t_exact != exact:
            _fail(
                "metamorphic",
                f"exact size changed under {label}: {exact} -> {t_exact}",
            )
        if label != "translation":
            # Dilation preserves nesting (hence the exact size) but not
            # the workspace width `hi - lo + 1`, so bucket boundaries
            # and coverage ratios legitimately move; only translation
            # leaves every integer difference — and therefore every
            # deterministic summary — unchanged.
            continue
        t_values = _deterministic_values(ta, td, tw, case)
        for method, value in base_values.items():
            moved = t_values[method]
            tolerance = METAMORPHIC_RTOL * max(1.0, abs(value))
            if abs(moved - value) > tolerance:
                _fail(
                    "metamorphic",
                    f"{method} not invariant under {label}: "
                    f"{value!r} -> {moved!r}",
                )

    # Ancestor-union additivity: per-descendant counts are additive in
    # the ancestor operand, so splitting A partitions the exact size.
    if len(a) >= 2:
        half = len(a) // 2
        a1 = NodeSet(a.elements[:half], name="A1", validate=False)
        a2 = NodeSet(a.elements[half:], name="A2", validate=False)
        split = containment_join_size(a1, d) + containment_join_size(a2, d)
        if split != exact:
            _fail(
                "metamorphic",
                f"ancestor-union additivity broken: {split} != {exact}",
            )

    # Duplication scaling: a disjoint copy of the whole case doubles
    # the join size (cross pairs are impossible across disjoint spans).
    offset = w.hi - w.lo + 1 + int(rng.integers(1, 100))
    copy_a, copy_d, __ = _transform_case(case, lambda p: p + offset)
    doubled_a = NodeSet(
        [*a.elements, *copy_a.elements], name="A2x"
    )
    doubled_d = NodeSet(
        [*d.elements, *copy_d.elements], name="D2x"
    )
    doubled = containment_join_size(doubled_a, doubled_d)
    if doubled != 2 * exact:
        _fail(
            "metamorphic",
            f"duplication scaling broken: {doubled} != 2*{exact}",
        )

    # Disjointness: the original A against the shifted copy of D can
    # produce no pairs — exact and the paper's sampling methods agree.
    disjoint = containment_join_size(a, copy_d)
    if disjoint != 0:
        _fail(
            "metamorphic",
            f"disjoint operands produced exact size {disjoint}",
        )
    span = Workspace(w.lo, w.hi + offset + 1)
    for method in ("IM", "PM"):
        config = method_config(method, case)
        value = api.estimate(
            a, copy_d, method, workspace=span, **config
        ).value
        if value != 0.0:
            _fail(
                "metamorphic",
                f"{method} estimated {value!r} for disjoint operands",
            )


# ----------------------------------------------------------------------
# Parser / validator fuzzing
# ----------------------------------------------------------------------


def check_parser_fuzz(case: Case) -> None:
    """Invalid XML is rejected typed; valid XML round-trips exactly."""
    from repro.core.errors import ParseError

    rng = make_rng(case.seed ^ 0xF00D)
    for document in invalid_xml_corpus(rng):
        try:
            parse_xml(document)
        except ParseError:
            continue
        except Exception as error:
            _fail(
                "parser-fuzz",
                f"parser raised untyped {type(error).__name__} on "
                f"{document[:40]!r}",
            )
        _fail(
            "parser-fuzz", f"parser accepted invalid input {document[:40]!r}"
        )
    document = random_xml(rng)
    tree = parse_xml(document)
    reparsed = parse_xml(to_xml(tree))
    original = [(e.tag, e.start, e.end) for e in tree.elements]
    round_trip = [(e.tag, e.start, e.end) for e in reparsed.elements]
    if original != round_trip:
        _fail("parser-fuzz", "serializer round-trip changed region codes")


def check_validator_fuzz(case: Case) -> None:
    """Broken region-code inputs are rejected with typed errors."""
    from repro.core.errors import InvalidRegionCodeError

    rng = make_rng(case.seed ^ 0xBAD)
    for rows in invalid_element_corpus(rng):
        elements = [Element(tag, start, end) for tag, start, end in rows]
        try:
            NodeSet(elements, validate=True)
        except InvalidRegionCodeError:
            continue
        except Exception as error:
            _fail(
                "validator-fuzz",
                f"NodeSet raised untyped {type(error).__name__} on "
                f"{rows!r}",
            )
        _fail("validator-fuzz", f"NodeSet accepted invalid codes {rows!r}")
    start = int(rng.integers(1, 100))
    for bad in ((start, start), (start, start - 3)):
        try:
            Element("x", *bad)
        except InvalidRegionCodeError:
            continue
        except Exception as error:
            _fail(
                "validator-fuzz",
                f"Element raised untyped {type(error).__name__} on {bad}",
            )
        _fail("validator-fuzz", f"Element accepted degenerate region {bad}")


def check_planner_invariance(case: Case) -> None:
    """Planner output is invariant to generator describe()/setup order.

    The :class:`~repro.optimizer.generator.CardinalityGenerator`
    lifecycle hooks promise idempotence: ``describe()`` is read-only
    and ``setup_for_workload`` may run any number of times.  For each
    generator family the oracle plans the same chain twice — once
    plainly, once with ``describe()`` calls and a repeated setup
    interleaved — and requires bit-identical plans, then round-trips
    the plan through its versioned wire form.
    """
    from repro.optimizer.generator import resolve_generator
    from repro.optimizer.planner import JoinPlan, optimize

    if len(case.ancestors) == 0 or len(case.descendants) == 0:
        return
    # a // a // d: a valid chain from any case's two operands.
    chain = [case.ancestors, case.ancestors, case.descendants]
    for name, config in (
        ("PL", {"num_buckets": 8}),
        ("UBOUND", {}),
        ("EXACT", {}),
    ):
        plain = resolve_generator(name, **config)
        baseline = optimize(chain, plain, workspace=case.workspace)

        noisy = resolve_generator(name, **config)
        before = noisy.describe()
        noisy.setup_for_workload(case.workspace, None)
        noisy.describe()
        noisy.setup_for_workload(case.workspace, None)
        perturbed = optimize(chain, noisy, workspace=case.workspace)
        after = noisy.describe()

        if perturbed != baseline:
            _fail(
                "planner-invariance",
                f"{name}: plan changed under describe()/setup "
                f"reordering: {perturbed} != {baseline}",
            )
        if before != after:
            _fail(
                "planner-invariance",
                f"{name}: describe() mutated across planning: "
                f"{before} != {after}",
            )
        if JoinPlan.from_dict(baseline.to_dict()) != baseline:
            _fail(
                "planner-invariance",
                f"{name}: plan wire round-trip not identical",
            )


def check_fused_vs_reference(case: Case) -> None:
    """Fused kernels ≡ the paper's per-call index composition.

    :mod:`repro.kernels.fused` collapses every sampling estimator's
    index_build→probe→scale sequence into single-pass kernels (with a
    table-gather tier when an :class:`IndexCache` is warm, and a
    compiled backend when numba is installed).  The contract is
    bit-for-bit: for every sampling method, every probe backend the
    method accepts, and every available kernel backend, the fused
    estimate must equal the one produced under
    :func:`repro.perf.reference_kernels` — which rebuilds the original
    StabbingCounter/TTree/XRTree composition per call — in value *and*
    details, cached or not.
    """
    from repro.kernels.backend import available_backends as kernel_backends
    from repro.kernels.backend import use_kernel_backend
    from repro.perf import reference_kernels

    a, d, w = case.ancestors, case.descendants, case.workspace
    jobs = [("IM", backend) for backend in ("rank", "ttree", "xrtree")]
    jobs += [("PM", backend) for backend in ("rank", "ttree")]
    jobs += [(m, None) for m in ("CROSS", "SYS", "SEMI-A", "SEMI-D", "BIFOCAL")]
    for method, probe_backend in jobs:
        config = method_config(method, case)
        if probe_backend is not None:
            config["backend"] = probe_backend
        try:
            with reference_kernels():
                want = api.estimate(a, d, method, workspace=w, **config)
        except ReproError:
            continue
        label = method if probe_backend is None else f"{method}/{probe_backend}"
        for kernel in kernel_backends():
            with use_kernel_backend(kernel):
                fused = api.estimate(a, d, method, workspace=w, **config)
                with use_index_cache(IndexCache()):
                    cold = api.estimate(a, d, method, workspace=w, **config)
                    warm = api.estimate(a, d, method, workspace=w, **config)
            for tier, got in (
                ("direct", fused),
                ("cache-cold", cold),
                ("cache-warm", warm),
            ):
                if got.value != want.value or got.details != want.details:
                    _fail(
                        "fused-vs-reference",
                        f"{label} on kernel backend {kernel!r} ({tier}): "
                        f"fused {got.value!r}/{got.details!r} != reference "
                        f"{want.value!r}/{want.details!r}",
                    )


def check_wire_roundtrip(case: Case) -> None:
    """Binary and JSON wire forms are interchangeable and exact.

    Every request must round-trip through both formats with identical
    operand arrays, metadata and config; the service must answer a
    binary payload and a JSON payload of the same seeded request with
    bit-identical estimates (and reply in the arrival format); and a
    response must survive its round-trip equal in every field.
    """
    from repro.service import wire

    a, d, w = case.ancestors, case.descendants, case.workspace
    samples = max(1, min(len(a), len(d)) // 2)
    request = EstimateRequest(
        ancestors=a,
        descendants=d,
        method="IM",
        workspace=w,
        config={"num_samples": samples, "seed": 11},
    )
    decoded = {}
    for wire_format in wire.KNOWN_FORMATS:
        got, detected = wire.decode_request(
            wire.encode_request(request, wire_format)
        )
        if detected != wire_format:
            _fail(
                "wire-roundtrip",
                f"{wire_format} payload sniffed as {detected}",
            )
        for role in ("ancestors", "descendants"):
            mine = getattr(got, role)
            theirs = getattr(request, role)
            if not (
                np.array_equal(mine.starts, theirs.starts)
                and np.array_equal(mine.ends, theirs.ends)
                and mine.fingerprint == theirs.fingerprint
            ):
                _fail(
                    "wire-roundtrip",
                    f"{wire_format} request round-trip changed {role}",
                )
        if (
            got.method != request.method
            or got.workspace != request.workspace
            or got.config != request.config
        ):
            _fail(
                "wire-roundtrip",
                f"{wire_format} request round-trip changed metadata",
            )
        decoded[wire_format] = got

    answers = {}
    with EstimationService(workers=0) as service:
        for wire_format in wire.KNOWN_FORMATS:
            reply = service.estimate_wire(
                wire.encode_request(request, wire_format)
            )
            if wire.sniff_format(reply) != wire_format:
                _fail(
                    "wire-roundtrip",
                    f"service answered a {wire_format} request in "
                    f"{wire.sniff_format(reply)}",
                )
            response = wire.decode_response(reply)
            if wire.decode_response(
                wire.encode_response(response, wire_format)
            ) != response:
                _fail(
                    "wire-roundtrip",
                    f"{wire_format} response round-trip not identical",
                )
            answers[wire_format] = (
                response.estimate.value,
                response.estimate.details,
            )
    if answers["binary"] != answers["json"]:
        _fail(
            "wire-roundtrip",
            f"binary vs JSON service answers differ: "
            f"{answers['binary']!r} != {answers['json']!r}",
        )


def check_incremental_vs_rebuild(case: Case) -> None:
    """Incrementally maintained synopses ≡ from-scratch rebuilds.

    The case's operands are merged into one element pool (dedup by
    region code — operands drawn from one document may share elements)
    and churned through a seeded :class:`~repro.stream.MutationFeed`.
    After *every* applied batch, each live tag's maintained structures
    must equal a from-scratch rebuild over the current population:

    * the zero-copy node set equals the validated rebuild exactly;
    * the PL statistics in both roles — integer counts bit-exact,
      ancestor ``total_length`` within 1e-12 relative (float
      reassociation only);
    * the PH cell grid, integer-identical as a dict;
    * the dynamic T-tree's stabbing count at every turning point and
      every element endpoint equals a fresh :class:`StabbingCounter`;
    * coverage bounds (merged intervals) exactly;
    * the reservoir is a subset of the live population at the right
      size.
    """
    from repro.estimators.coverage_histogram import merged_interval_bounds
    from repro.estimators.ph_histogram import cell_histogram
    from repro.estimators.pl_histogram import PLHistogram
    from repro.index.stab import StabbingCounter
    from repro.stream import LiveWorkspace, MutationFeed

    pool: dict[tuple[int, int], Element] = {}
    for element in (*case.ancestors.elements, *case.descendants.elements):
        pool.setdefault((element.start, element.end), element)
    feed = MutationFeed(pool.values(), seed=case.seed)
    live = LiveWorkspace(
        case.workspace,
        elements=feed.bootstrap(),
        num_buckets=8,
        num_cells=25,
        reservoir_capacity=16,
        seed=case.seed,
    )
    batch_size = max(1, len(pool) // 4)
    for batch in feed.batches(5, batch_size):
        live.apply(batch)
        for tag in live.tags():
            maintained = live.node_set(tag)
            rebuilt = live.rebuild_node_set(tag)
            where = f"tag {tag!r} after batch {batch.index}"
            if not (
                np.array_equal(maintained.starts, rebuilt.starts)
                and np.array_equal(maintained.ends, rebuilt.ends)
            ):
                _fail(
                    "incremental-vs-rebuild",
                    f"{where}: maintained arrays != rebuilt node set",
                )
            pl = live.pl_histogram(tag)
            want_anc = PLHistogram.build_ancestor(
                rebuilt, case.workspace, pl.num_buckets
            )
            for got, want in zip(
                pl.ancestor_histogram().buckets, want_anc.buckets
            ):
                if got.n != want.n:
                    _fail(
                        "incremental-vs-rebuild",
                        f"{where}: ancestor PL bucket {want.index} count "
                        f"{got.n} != rebuilt {want.n}",
                    )
                tolerance = 1e-12 * max(1.0, abs(want.total_length))
                if abs(got.total_length - want.total_length) > tolerance:
                    _fail(
                        "incremental-vs-rebuild",
                        f"{where}: ancestor PL bucket {want.index} "
                        f"total_length {got.total_length!r} != rebuilt "
                        f"{want.total_length!r}",
                    )
            want_desc = PLHistogram.build_descendant(
                rebuilt, case.workspace, pl.num_buckets
            )
            for got, want in zip(
                pl.descendant_histogram().buckets, want_desc.buckets
            ):
                if got.n != want.n:
                    _fail(
                        "incremental-vs-rebuild",
                        f"{where}: descendant PL bucket {want.index} "
                        f"count {got.n} != rebuilt {want.n}",
                    )
            cells = live.cell_histogram(tag)
            want_cells = cell_histogram(
                rebuilt, case.workspace, cells.side
            )
            if dict(cells.cell_histogram()) != dict(want_cells):
                _fail(
                    "incremental-vs-rebuild",
                    f"{where}: PH cell grid diverged from rebuild",
                )
            ttree = live.ttree(tag)
            counter = StabbingCounter(rebuilt)
            positions = {p for p, _ in ttree.turning_points()}
            positions.update(int(s) for s in rebuilt.starts)
            positions.update(int(e) for e in rebuilt.ends)
            for position in sorted(positions):
                if ttree.count(position) != counter.count(position):
                    _fail(
                        "incremental-vs-rebuild",
                        f"{where}: T-tree stab count at {position} is "
                        f"{ttree.count(position)} != "
                        f"{counter.count(position)}",
                    )
            if not np.array_equal(
                live.coverage_bounds(tag), merged_interval_bounds(rebuilt)
            ):
                _fail(
                    "incremental-vs-rebuild",
                    f"{where}: coverage bounds diverged from rebuild",
                )
            reservoir = live.reservoir(tag)
            population = {(e.start, e.end) for e in rebuilt.elements}
            drawn = [(e.start, e.end) for e in reservoir.sample]
            # Random pairing may run under capacity while holes are
            # uncompensated, never over it — and never over the
            # population.
            if len(drawn) > min(reservoir.capacity, len(population)):
                _fail(
                    "incremental-vs-rebuild",
                    f"{where}: reservoir holds {len(drawn)} of "
                    f"{len(population)} live (capacity "
                    f"{reservoir.capacity})",
                )
            if reservoir.live != len(population):
                _fail(
                    "incremental-vs-rebuild",
                    f"{where}: reservoir live count {reservoir.live} != "
                    f"population {len(population)}",
                )
            if not population.issuperset(drawn):
                _fail(
                    "incremental-vs-rebuild",
                    f"{where}: reservoir contains non-live elements",
                )


#: The registry the runner iterates: name -> per-case oracle.
ORACLES: dict[str, Callable[[Case], None]] = {
    "exact-join": check_exact_join,
    "summary-geometry": check_summary_geometry,
    "estimate-vs-exact": check_estimate_vs_exact,
    "estimator-contract": check_estimator_contract,
    "batched-vs-sequential": check_batched_vs_sequential,
    "cached-vs-uncached": check_cached_vs_uncached,
    "service-vs-direct": check_service_vs_direct,
    "fused-vs-reference": check_fused_vs_reference,
    "wire-roundtrip": check_wire_roundtrip,
    "feedback-transparency": check_feedback_transparency,
    "sharded-vs-unsharded": check_sharded_vs_unsharded,
    "incremental-vs-rebuild": check_incremental_vs_rebuild,
    "planner-invariance": check_planner_invariance,
    "metamorphic": check_metamorphic,
    "parser-fuzz": check_parser_fuzz,
    "validator-fuzz": check_validator_fuzz,
}
