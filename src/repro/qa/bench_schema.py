"""Schemas for the ``BENCH_*.json`` bench-report artifacts.

``bench_runner`` validates each report against these specs before
writing it, and ``tests/test_bench_schema.py`` validates the checked-in
artifacts, so a drive-by change to a report's shape fails fast on both
sides instead of silently breaking downstream consumers (the CI identity
gates and the obs-report tooling parse these files).

Dependency-free on purpose: the container has no ``jsonschema``, so the
spec language is a small recursive structure —

* a type or tuple of types — a leaf value (``float`` accepts ints);
* :class:`Spec` — a mapping with ``required``/``optional`` fields and an
  optional ``values`` sub-spec that every *other* value must match;
* :func:`nullable` — the wrapped spec, or ``None``.

Unknown keys are allowed (reports may grow), missing required keys and
wrong types are errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "BenchSchemaError",
    "Spec",
    "nullable",
    "KERNELS_SCHEMA",
    "OPTIMIZER_SCHEMA",
    "ROUTER_SCHEMA",
    "SAMPLING_SCHEMA",
    "SERVICE_SCHEMA",
    "STREAM_SCHEMA",
    "SCHEMAS",
    "schema_kind_for_path",
    "validate_bench_report",
    "validate_bench_file",
]


class BenchSchemaError(ValueError):
    """A bench report does not match its schema."""


@dataclass(frozen=True)
class Spec:
    """Shape of one JSON object."""

    required: Mapping[str, Any] = field(default_factory=dict)
    optional: Mapping[str, Any] = field(default_factory=dict)
    #: When set, every key not named in required/optional must match.
    values: Any = None


@dataclass(frozen=True)
class _Nullable:
    spec: Any


def nullable(spec: Any) -> _Nullable:
    return _Nullable(spec)


#: Leaf helper: JSON numbers arrive as int or float interchangeably.
NUMBER = (int, float)


def _check(value: Any, spec: Any, path: str) -> None:
    if isinstance(spec, _Nullable):
        if value is None:
            return
        _check(value, spec.spec, path)
        return
    if isinstance(spec, Spec):
        if not isinstance(value, dict):
            raise BenchSchemaError(
                f"{path}: expected object, got {type(value).__name__}"
            )
        for key, sub in spec.required.items():
            if key not in value:
                raise BenchSchemaError(f"{path}: missing required key {key!r}")
            _check(value[key], sub, f"{path}.{key}")
        for key, sub in spec.optional.items():
            if key in value:
                _check(value[key], sub, f"{path}.{key}")
        if spec.values is not None:
            known = set(spec.required) | set(spec.optional)
            for key, sub in value.items():
                if key not in known:
                    _check(sub, spec.values, f"{path}.{key}")
        return
    if isinstance(spec, list):  # homogeneous array, spec is [item_spec]
        if not isinstance(value, list):
            raise BenchSchemaError(
                f"{path}: expected array, got {type(value).__name__}"
            )
        for i, item in enumerate(value):
            _check(item, spec[0], f"{path}[{i}]")
        return
    # Leaf: type or tuple of types.  bool is an int subclass in Python;
    # reject it where a number is expected.
    if not isinstance(value, spec) or (
        spec in (int, float, NUMBER)
        and isinstance(value, bool)
    ):
        expected = getattr(spec, "__name__", None) or "/".join(
            t.__name__ for t in spec
        )
        raise BenchSchemaError(
            f"{path}: expected {expected}, got {type(value).__name__} "
            f"({value!r})"
        )


_KERNEL_TIMING = Spec(
    required={
        "reference_s": NUMBER,
        "vectorized_s": NUMBER,
        "speedup": NUMBER,
    }
)

_BATCH_TIMING = Spec(
    required={
        "trials": int,
        "reference_s": NUMBER,
        "batched_s": NUMBER,
        "speedup": NUMBER,
        "identical": bool,
    }
)

_SWEEP_TIMING = Spec(
    required={
        "runs": int,
        "reference_s": NUMBER,
        "batched_s": NUMBER,
        "speedup": NUMBER,
        "identical_series": bool,
    },
    optional={"index_cache": dict},
)

#: Shared body of the sampling phase (embedded in the kernels report and
#: written standalone as BENCH_sampling.json).
_SAMPLING_BODY = {
    "backends": Spec(values=_BATCH_TIMING),
    "fig8_sweep": Spec(values=_SWEEP_TIMING),
    "identical": bool,
    "speedup": NUMBER,
}

SAMPLING_SCHEMA = Spec(
    required={"mode": str, **_SAMPLING_BODY},
    optional={"scale": NUMBER},
)

#: The sharding phase: scatter/gather over the shared-memory worker
#: pool versus a single process, on the memoization-proof fresh-seed
#: trace.  ``identical`` and an empty ``leaked_segments`` are hard CI
#: gates; the speedup gate applies only where ``cpu_count`` permits.
_SHARDING_PHASE = Spec(
    required={
        "requests": int,
        "trials": int,
        "processes": int,
        "cpu_count": int,
        "baseline_seconds": NUMBER,
        "sharded_seconds": NUMBER,
        "speedup": NUMBER,
        "identical": bool,
        "mismatches": [str],
        "scatters": int,
        "fallbacks": int,
        "leaked_segments": [str],
    },
    optional={"arena_bytes": int},
)

#: The wire-codec phase: JSON versus zero-copy binary encode/decode over
#: one round of distinct trace requests.  ``roundtrip_identical`` is a
#: hard gate; the decode speedup is the binary format's headline.
_WIRE_PHASE = Spec(
    required={
        "requests": int,
        "trials": int,
        "json_encode_s": NUMBER,
        "json_decode_s": NUMBER,
        "binary_encode_s": NUMBER,
        "binary_decode_s": NUMBER,
        "json_bytes": int,
        "binary_bytes": int,
        "encode_speedup": NUMBER,
        "decode_speedup": NUMBER,
        "roundtrip_identical": bool,
    }
)

SERVICE_SCHEMA = Spec(
    required={
        "bench": str,
        "dataset": str,
        "scale": NUMBER,
        "method": str,
        "workers": int,
        "max_batch": int,
        "repeats": int,
        "distinct_configs": int,
        "throughput": dict,
        "deadline": Spec(required={"latency_p99_s": NUMBER}),
        "stress": dict,
        "workload_speedup": NUMBER,
    },
    optional={
        "batching": dict,
        "batching_speedup": NUMBER,
        "sharding": _SHARDING_PHASE,
        "sharding_speedup": NUMBER,
        # Older artifacts predate the wire codec phase.
        "wire": _WIRE_PHASE,
    },
)

KERNELS_SCHEMA = Spec(
    required={
        "mode": str,
        "scale": NUMBER,
        "kernels": Spec(values=_KERNEL_TIMING),
        "fig7_sweep": Spec(
            required={
                "scale": NUMBER,
                "bucket_counts": [int],
                "reference_s": NUMBER,
                "vectorized_s": NUMBER,
                "vectorized_cached_s": NUMBER,
                "speedup": NUMBER,
            },
            optional={"identical_output": bool},
        ),
        "sampling": Spec(
            required=dict(_SAMPLING_BODY), optional={"scale": NUMBER}
        ),
        "obs_overhead": Spec(
            required={
                "baseline_s": NUMBER,
                "observed_s": NUMBER,
                "overhead_pct": NUMBER,
                "estimator_calls": int,
                "cache_lookups": int,
            }
        ),
        "parallel": nullable(dict),
        "metrics": dict,
    },
    # Older artifacts predate the service and fused-kernel phases.
    optional={
        "service": SERVICE_SCHEMA,
        "fused": Spec(
            required={
                "kernel_backend": str,
                "kernels": Spec(
                    values=Spec(
                        required={
                            "trials": int,
                            "batched_s": NUMBER,
                            "fused_s": NUMBER,
                            "speedup": NUMBER,
                            "identical": bool,
                        }
                    )
                ),
                "identical": bool,
                "speedup": NUMBER,
            },
            optional={"available_backends": [str]},
        ),
    },
)

#: One generator's plan for one chain of the regret sweep.
_PLAN_RESULT = Spec(
    required={
        "plan": str,
        "true_cost": NUMBER,
        "estimated_cost": NUMBER,
        "regret": NUMBER,
        "underestimated_segments": int,
    }
)

_CHAIN_ROW = Spec(
    required={
        "dataset": str,
        "tags": [str],
        "optimal_cost": NUMBER,
        "plans": Spec(values=_PLAN_RESULT),
    }
)

_GENERATOR_SUMMARY = Spec(
    required={
        "describe": dict,
        "chains": int,
        "mean_regret": NUMBER,
        "max_regret": NUMBER,
        "optimal_plans": int,
        "underestimated_segments": int,
    }
)

#: The plan-regret sweep: every cardinality generator through the chain
#: planner over the XMark/DBLP/XMach workloads.  The CI gates require
#: the EXACT generator's regret to be 0 on every chain and the UBOUND
#: generator to report zero underestimated segments.
OPTIMIZER_SCHEMA = Spec(
    required={
        "bench": str,
        "schema_version": int,
        "scale": NUMBER,
        "seed": int,
        "datasets": [str],
        "generators": Spec(values=_GENERATOR_SUMMARY),
        "chains": [_CHAIN_ROW],
    },
    optional={"elapsed_s": NUMBER},
)

#: One dataset's routing trace in the router bench.
_ROUTER_DATASET_ROW = Spec(
    required={
        "dataset": str,
        "queries": int,
        "rounds": int,
        "warmup_rounds": int,
        "candidates": Spec(values=dict),
        "router_loss": NUMBER,
        "router_loss_gated": NUMBER,
        "fixed_loss": Spec(values=NUMBER),
        "fixed_loss_gated": Spec(values=NUMBER),
        "best_fixed": str,
        "regret_ratio": NUMBER,
        "regret_ratio_total": NUMBER,
        "arm_pulls": Spec(values=int),
    }
)

_CORRECTION_CELL = Spec(
    required={
        "cell": str,
        "records": int,
        "mre_before": NUMBER,
        "mre_after": NUMBER,
        "fitted": bool,
        "reduction_pct": NUMBER,
    }
)

#: The closed-loop bench: bandit routing regret against the best fixed
#: method on the Table 3 traces, plus the correction model's held-out
#: MRE reduction.  The CI gates require ``total.regret_ratio`` at or
#: under the fixed budget (1.15), ``correction.worsened == 0`` and
#: ``correction.max_reduction_pct`` at or above 10.
ROUTER_SCHEMA = Spec(
    required={
        "bench": str,
        "schema_version": int,
        "scale": NUMBER,
        "seed": int,
        "rounds": int,
        "datasets": [str],
        "router": dict,
        "per_dataset": [_ROUTER_DATASET_ROW],
        "total": Spec(
            required={
                "router_loss": NUMBER,
                "router_loss_gated": NUMBER,
                "best_fixed_loss": NUMBER,
                "best_fixed_loss_gated": NUMBER,
                "regret_ratio": NUMBER,
                "regret_ratio_total": NUMBER,
            }
        ),
        "correction": Spec(
            required={
                "mode": str,
                "per_method": bool,
                "holdout": NUMBER,
                "cells": int,
                "fitted": int,
                "worsened": int,
                "max_reduction_pct": NUMBER,
                "top_cells": [_CORRECTION_CELL],
            }
        ),
        "feedback": Spec(
            required={"records": int, "with_truth": int, "classes": int}
        ),
    },
    optional={"elapsed_s": NUMBER},
)

#: The streaming churn bench: incremental maintenance throughput versus
#: per-batch rebuilds (gated at >= 5x with ``identical`` true), read
#: latency and staleness disclosure under mixed load (violation rate
#: gated at <= 1%), and cross-tenant cache isolation (gated at zero
#: cross-tenant invalidations).
STREAM_SCHEMA = Spec(
    required={
        "bench": str,
        "schema_version": int,
        "dataset": str,
        "scale": NUMBER,
        "seed": int,
        "pool_size": int,
        "tags": int,
        "read_tags": [str],
        "num_buckets": int,
        "num_cells": int,
        "update": Spec(
            required={
                "batches": int,
                "batch_size": int,
                "mutations": int,
                "incremental_s": NUMBER,
                "rebuild_s": NUMBER,
                "speedup": NUMBER,
                "incremental_mutations_per_s": NUMBER,
                "rebuild_mutations_per_s": NUMBER,
                "identical": bool,
            }
        ),
        "serving": Spec(
            required={
                "requests": int,
                "writes_per_read": int,
                "max_staleness_s": NUMBER,
                "ok": int,
                "degraded": int,
                "stale_degraded": int,
                "latency_p50_s": NUMBER,
                "latency_p99_s": NUMBER,
                "staleness_p99_s": NUMBER,
                "violations": int,
                "violation_rate": NUMBER,
            }
        ),
        "isolation": Spec(
            required={
                "tenants": int,
                "churn_batches": int,
                "batch_size": int,
                "victim_entries_before": int,
                "victim_entries_after": int,
                "cross_tenant_invalidations": int,
                "churner_invalidations": int,
                "victim_served_from_cache": bool,
                "victim_value_stable": bool,
            }
        ),
    },
    optional={"elapsed_s": NUMBER},
)

SCHEMAS: dict[str, Spec] = {
    "kernels": KERNELS_SCHEMA,
    "optimizer": OPTIMIZER_SCHEMA,
    "router": ROUTER_SCHEMA,
    "sampling": SAMPLING_SCHEMA,
    "service": SERVICE_SCHEMA,
    "stream": STREAM_SCHEMA,
}


def schema_kind_for_path(path: str | Path) -> str:
    """Map ``BENCH_<kind>.json`` (any directory) to its schema kind."""
    stem = Path(path).stem
    if not stem.startswith("BENCH_"):
        raise BenchSchemaError(f"{path}: not a BENCH_*.json artifact")
    kind = stem[len("BENCH_"):]
    if kind not in SCHEMAS:
        raise BenchSchemaError(
            f"{path}: unknown bench report kind {kind!r} "
            f"(expected one of {sorted(SCHEMAS)})"
        )
    return kind


def validate_bench_report(data: Any, kind: str) -> None:
    """Raise :class:`BenchSchemaError` unless ``data`` matches ``kind``."""
    if kind not in SCHEMAS:
        raise BenchSchemaError(
            f"unknown bench report kind {kind!r} "
            f"(expected one of {sorted(SCHEMAS)})"
        )
    _check(data, SCHEMAS[kind], kind)


def validate_bench_file(path: str | Path) -> str:
    """Validate a BENCH_*.json file; returns the detected kind."""
    import json

    kind = schema_kind_for_path(path)
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    validate_bench_report(data, kind)
    return kind
