"""repro.qa — generative testing, differential oracles, statistical gates.

The qa subsystem adversarially probes every estimation layer with seeded
random workloads: exact joins against each other, every registered
estimator against its contracts, batched against sequential kernels,
cached against uncached paths, the service against direct calls, plus
metamorphic invariants, parser/validator fuzzing, and the paper's
unbiasedness/concentration guarantees as statistical gates.

Entry points:

* ``python -m repro qa --budget-s N --seed S [--report out.json]``
* :func:`repro.qa.run_qa` / :func:`repro.qa.replay` in-process
* ``docs/TESTING.md`` for the tier layout and reproducer workflow
"""

from repro.qa.bench_schema import (
    BenchSchemaError,
    validate_bench_file,
    validate_bench_report,
)
from repro.qa.generators import Case, random_case, random_document
from repro.qa.oracles import ORACLES, OracleFailure
from repro.qa.runner import (
    QA_REPORT_SCHEMA_VERSION,
    Finding,
    replay,
    replay_file,
    run_qa,
)
from repro.qa.shrink import shrink_case
from repro.qa.stats import GateResult, run_statistical_gates

__all__ = [
    "BenchSchemaError",
    "Case",
    "Finding",
    "GateResult",
    "ORACLES",
    "OracleFailure",
    "QA_REPORT_SCHEMA_VERSION",
    "random_case",
    "random_document",
    "replay",
    "replay_file",
    "run_qa",
    "run_statistical_gates",
    "shrink_case",
    "validate_bench_file",
    "validate_bench_report",
]
