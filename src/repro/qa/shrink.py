"""Greedy delta-debugging shrinker for failing qa cases.

Given a case that makes an oracle fail, the shrinker searches for a
smaller case that still fails, by deleting runs of elements from each
operand (largest chunks first, ddmin-style) and re-running the oracle's
predicate.  Subsets of a strictly nested element family stay valid, so
every candidate is a legal input by construction.

The shrinker is deterministic and bounded: it stops after
``max_checks`` predicate evaluations or when no single deletion
reproduces the failure, whichever comes first, and returns the smallest
failing case seen.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.qa.generators import Case

#: A predicate that returns True while the case still FAILS the oracle.
FailPredicate = Callable[[Case], bool]


def _rebuild(case: Case, a: Sequence[Element], d: Sequence[Element]) -> Case:
    ancestors = NodeSet(a, name=case.ancestors.name, validate=False)
    descendants = NodeSet(d, name=case.descendants.name, validate=False)
    lo = min(int(ancestors.starts[0]), int(descendants.starts[0]))
    hi = max(
        int(ancestors.sorted_ends[-1]), int(descendants.sorted_ends[-1])
    )
    workspace = Workspace(
        min(case.workspace.lo, lo), max(case.workspace.hi, hi)
    )
    return Case(
        seed=case.seed,
        ancestors=ancestors,
        descendants=descendants,
        workspace=workspace,
        elements=case.elements,
        meta=dict(case.meta),
    )


def shrink_case(
    case: Case,
    still_fails: FailPredicate,
    max_checks: int = 250,
) -> tuple[Case, int]:
    """The smallest failing variant found, plus predicate evaluations.

    ``still_fails`` must treat *any* exception it raises internally as
    part of the failure it is checking for (the runner wraps oracles so
    a crash counts as a failure); the shrinker itself never interprets
    the case, it only deletes elements.
    """
    checks = 0

    def fails(candidate: Case) -> bool:
        nonlocal checks
        checks += 1
        try:
            return still_fails(candidate)
        except Exception:
            # A predicate that itself crashes on the reduced case is
            # treated as "does not reproduce" — conservative: we only
            # keep reductions that provably show the original failure.
            return False

    def reduce_operand(current: Case, role: str) -> Case:
        nonlocal checks
        while True:
            elements = list(
                current.ancestors.elements
                if role == "A"
                else current.descendants.elements
            )
            if len(elements) <= 1:
                return current
            chunk = max(1, len(elements) // 2)
            shrunk = False
            while chunk >= 1 and not shrunk:
                for start in range(0, len(elements), chunk):
                    if checks >= max_checks:
                        return current
                    kept = elements[:start] + elements[start + chunk:]
                    if not kept:
                        continue
                    candidate = (
                        _rebuild(current, kept, current.descendants.elements)
                        if role == "A"
                        else _rebuild(
                            current, current.ancestors.elements, kept
                        )
                    )
                    if fails(candidate):
                        current = candidate
                        shrunk = True
                        break
                else:
                    chunk //= 2
            if not shrunk:
                return current

    smallest = case
    # Alternate operands until a full round removes nothing.
    while checks < max_checks:
        before = (len(smallest.ancestors), len(smallest.descendants))
        smallest = reduce_operand(smallest, "A")
        smallest = reduce_operand(smallest, "D")
        if (len(smallest.ancestors), len(smallest.descendants)) == before:
            break
    return smallest, checks
