"""Seeded random generators for the qa subsystem.

Everything here is a pure function of a :class:`numpy.random.Generator`,
so a case is reproducible from its seed alone.  Two kinds of output:

* **valid-by-construction inputs** — random region-coded documents built
  by a depth-first walk that assigns strictly nested, distinct codes
  (with random gaps, so code arithmetic is exercised away from the dense
  ``1..2n`` layout), and operand pairs drawn from them;
* **an invalid-input corpus** — malformed XML documents and broken
  region-code element lists that the parser and the NodeSet validator
  must reject with their *typed* errors (anything else — a wrong
  exception type, a silent acceptance — is a finding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.core.rng import make_rng
from repro.core.workspace import Workspace

#: Tag alphabet for generated documents.  Small on purpose: collisions
#: between the ancestor and descendant predicates are part of the space.
TAGS = ("a", "b", "c", "d", "e")


@dataclass
class Case:
    """One generated workload: two operands over a shared workspace.

    ``elements`` is the full generated document (the operands are
    subsets of it), kept so metamorphic transforms can rebuild variants
    from the same structure.
    """

    seed: int
    ancestors: NodeSet
    descendants: NodeSet
    workspace: Workspace
    elements: tuple[Element, ...] = ()
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON form used by qa-report reproducers."""
        return {
            "seed": self.seed,
            "workspace": [self.workspace.lo, self.workspace.hi],
            "ancestors": serialize_elements(self.ancestors.elements),
            "descendants": serialize_elements(self.descendants.elements),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Case":
        lo, hi = payload["workspace"]
        return cls(
            seed=int(payload.get("seed", 0)),
            ancestors=NodeSet(
                deserialize_elements(payload["ancestors"]), name="A"
            ),
            descendants=NodeSet(
                deserialize_elements(payload["descendants"]), name="D"
            ),
            workspace=Workspace(int(lo), int(hi)),
        )


def serialize_elements(
    elements: Sequence[Element],
) -> list[list[Any]]:
    """Elements as ``[tag, start, end, level]`` rows (JSON-safe)."""
    return [[e.tag, e.start, e.end, e.level] for e in elements]


def deserialize_elements(rows: Sequence[Sequence[Any]]) -> list[Element]:
    return [
        Element(str(tag), int(start), int(end), int(level))
        for tag, start, end, level in rows
    ]


# ----------------------------------------------------------------------
# Valid documents
# ----------------------------------------------------------------------


def random_document(
    rng: np.random.Generator,
    max_nodes: int = 80,
    max_depth: int = 7,
    max_gap: int = 4,
    first_position: int | None = None,
) -> list[Element]:
    """A random strictly nested, distinct-code element list.

    Codes are assigned by a depth-first walk of a randomly shaped tree;
    ``max_gap`` inserts random unused positions between events so the
    generated workspaces are not the dense region coding the datasets
    produce.  The result is valid by construction: ``NodeSet(...,
    validate=True)`` accepts any subset of it.
    """
    if first_position is None:
        first_position = int(rng.integers(1, 1000))
    position = first_position
    budget = int(rng.integers(1, max_nodes + 1))
    elements: list[Element] = []

    def gap() -> int:
        return int(rng.integers(0, max_gap + 1)) if max_gap else 0

    def build(depth: int) -> None:
        nonlocal position, budget
        budget -= 1
        tag = str(rng.choice(TAGS))
        start = position
        position += 1 + gap()
        # Branchy near the root, thinner as depth grows.
        while (
            budget > 0
            and depth < max_depth
            and rng.random() < 0.6 / (1 + 0.3 * depth)
        ):
            build(depth + 1)
        end = position
        position += 1 + gap()
        elements.append(Element(tag, start, end, depth))

    while budget > 0:
        build(0)
        position += gap()
    return elements


def random_case(seed: int, max_nodes: int = 80) -> Case:
    """A random operand pair drawn from one random document.

    Both operands are non-empty subsets of the document's elements:
    usually the node sets of one or more tags, sometimes a uniformly
    random subset (so operands that share elements, nest inside each
    other, or interleave all occur).
    """
    rng = make_rng(seed)
    elements = random_document(rng, max_nodes=max_nodes)

    def pick(role: str) -> list[Element]:
        if rng.random() < 0.7:
            count = int(rng.integers(1, 3))
            tags = rng.choice(TAGS, size=count, replace=False)
            chosen = [e for e in elements if e.tag in set(tags)]
        else:
            mask = rng.random(len(elements)) < rng.uniform(0.2, 0.9)
            chosen = [e for e, keep in zip(elements, mask) if keep]
        if not chosen:  # guarantee non-empty operands
            chosen = [elements[int(rng.integers(0, len(elements)))]]
        return chosen

    ancestors = NodeSet(pick("A"), name="A")
    descendants = NodeSet(pick("D"), name="D")
    lo = min(int(ancestors.starts[0]), int(descendants.starts[0]))
    hi = max(
        int(ancestors.sorted_ends[-1]), int(descendants.sorted_ends[-1])
    )
    pad = int(rng.integers(0, 5))
    workspace = Workspace(lo - pad, hi + pad)
    return Case(
        seed=seed,
        ancestors=ancestors,
        descendants=descendants,
        workspace=workspace,
        elements=tuple(sorted(elements, key=lambda e: e.start)),
    )


def random_xml(rng: np.random.Generator, max_nodes: int = 40) -> str:
    """A random well-formed XML document (single root, nested tags)."""
    budget = int(rng.integers(1, max_nodes + 1))
    pieces: list[str] = []

    def build(depth: int) -> None:
        nonlocal budget
        budget -= 1
        tag = str(rng.choice(TAGS))
        children = (
            budget > 0
            and depth < 6
            and rng.random() < 0.7 / (1 + 0.3 * depth)
        )
        if not children:
            pieces.append(f"<{tag}/>")
            return
        pieces.append(f"<{tag}>")
        while (
            budget > 0
            and depth < 6
            and rng.random() < 0.6 / (1 + 0.3 * depth)
        ):
            build(depth + 1)
        if rng.random() < 0.2:
            pieces.append("some text ")
        pieces.append(f"</{tag}>")

    pieces.append("<root>")
    while budget > 0:
        build(1)
    pieces.append("</root>")
    return "".join(pieces)


def disjoint_operands(case: Case) -> tuple[NodeSet, NodeSet]:
    """The case's operands with shared elements removed from D.

    The paper's model draws A and D from different query predicates, so
    an element never appears on both sides; the stab-based estimators
    rely on that (an element's own start stabs its own interval, which
    the strict containment join excludes).  Checks that compare
    estimates against the exact size — the statistical gates and the
    full-sample identity — must therefore run on disjoint operands.

    Falls back to the full descendant set when removal would empty it.
    """
    shared = set(case.ancestors.elements)
    kept = [e for e in case.descendants.elements if e not in shared]
    if not kept:
        return case.ancestors, case.descendants
    return case.ancestors, NodeSet(kept, name="D\\A", validate=False)


# ----------------------------------------------------------------------
# Invalid corpora
# ----------------------------------------------------------------------


def invalid_xml_corpus(rng: np.random.Generator) -> list[str]:
    """Malformed XML documents the parser must reject with ParseError."""
    base = random_xml(rng, max_nodes=10)
    cut = int(rng.integers(1, max(2, len(base))))
    corpus = [
        "",  # no root at all
        "just text, no markup",
        "<a><b></a></b>",  # mismatched close order
        "<a>",  # unclosed root
        "</a>",  # close without open
        "<a/><b/>",  # multiple roots
        "<a></a>trailing<b></b>",  # content after the root
        "text outside <a/>",  # character data before the root
        "<a><b></b>",  # unclosed inner element left open
        "<1bad/>",  # invalid tag name
        base[:cut] + "<",  # truncated mid-token
    ]
    # Random mutation of a valid document: delete a closing tag.
    mutated = base.replace("</root>", "", 1)
    corpus.append(mutated)
    return corpus


def invalid_element_corpus(
    rng: np.random.Generator,
) -> list[list[tuple[str, int, int]]]:
    """Region-code lists the NodeSet validator must reject.

    Each entry violates exactly one invariant: duplicate codes, or
    partial overlap between two regions.  (``start >= end`` is rejected
    one level earlier, by ``Element`` itself, and is exercised
    separately by the oracle.)
    """
    lo = int(rng.integers(1, 50))
    return [
        # duplicate start code across two elements
        [("a", lo, lo + 5), ("b", lo, lo + 9)],
        # an element's end reused as another's start
        [("a", lo, lo + 3), ("b", lo + 3, lo + 8)],
        # partial overlap: neither disjoint nor nested
        [("a", lo, lo + 6), ("b", lo + 4, lo + 10)],
        # duplicate element outright
        [("a", lo, lo + 2), ("a", lo, lo + 2)],
    ]
