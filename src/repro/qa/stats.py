"""Statistical-guarantee gates for the sampling estimators.

Two families of gate, both seeded and therefore deterministic in CI:

**Unbiasedness** (Theorems 3 and 4).  Over ``T`` independent trials the
trial mean of an unbiased estimator is approximately normal by the CLT,
so ``z = (mean - exact) * sqrt(T) / std`` should fall inside the
two-sided 99% acceptance region ``|z| < 2.576``.  A correct estimator
fails such a gate with probability 1% *per fresh seed*; with the seed
pinned the gate either always passes or has found a real bias, which is
exactly the determinism CI needs.  Trial counts are documented in
:data:`UNBIASEDNESS_TRIALS`.

**Concentration** (Hoeffding bounds behind Theorems 3 and 4).  Each
IM trial is ``|D| * mean(m stab counts in [0, H])`` and each PM trial is
``w * mean(m products in [0, H])``, where ``H`` is the maximum stabbing
number of the ancestor family.  Hoeffding (and Serfling's refinement for
IM's without-replacement draw) gives

    P(|X_hat - X| >= scale * t) <= 2 * exp(-2 m t^2 / H^2) = delta

with ``scale = |D|`` (IM) or ``w`` (PM).  The gate inverts the bound at
``delta = 0.01``, counts trials whose error exceeds ``scale * t``, and
accepts while the empirical violation count stays below a binomial
99.9% upper envelope of ``delta * T`` — so a sound bound passes
deterministically while an estimator whose tails are heavier than the
theorem promises is flagged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.registry import make_estimator
from repro.index.stab import StabbingCounter
from repro.join import containment_join_size
from repro.qa.generators import disjoint_operands, random_case

#: Two-sided 99% CLT acceptance threshold for the unbiasedness z-test.
Z_CRITICAL_99 = 2.576

#: Trials per unbiasedness gate.  400 keeps the z-test's normal
#: approximation comfortable and runs in well under a second through the
#: batched ``estimate_trials`` path.
UNBIASEDNESS_TRIALS = 400

#: Trials per concentration gate and the bound's failure probability.
CONCENTRATION_TRIALS = 200
CONCENTRATION_DELTA = 0.01

#: Sample size m used inside each trial.
GATE_SAMPLES = 25

#: Workload seeds the gates run on (generated via random_case with
#: larger documents, then disjointified).  Chosen so the join stays
#: dense after removing shared elements (exact sizes 98 and 80 with
#: |D| ~ 94-133 >> m): a sparse join makes the trial distribution a
#: rare-event distribution and the z-test meaningless at any trial
#: count, and a too-small |D| degenerates IM into the exact full sample.
GATE_CASE_SEEDS = (1060, 1262)
GATE_CASE_NODES = 220


@dataclass
class GateResult:
    """Outcome of one statistical gate on one workload."""

    gate: str
    method: str
    case_seed: int
    passed: bool
    statistic: float
    threshold: float
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "gate": self.gate,
            "method": self.method,
            "case_seed": self.case_seed,
            "passed": self.passed,
            "statistic": self.statistic,
            "threshold": self.threshold,
            "detail": self.detail,
        }


def _stabbing_height(ancestors: NodeSet) -> int:
    """Maximum stabbing number H of the ancestor interval family.

    The maximum over the continuum is attained at some interval start,
    so probing the starts suffices.
    """
    counter = StabbingCounter(ancestors)
    return int(counter.count_many(ancestors.starts).max(initial=0))


def _gate_workload(
    case_seed: int,
) -> tuple[NodeSet, NodeSet, Workspace, int]:
    """Disjoint gate operands plus the exact join size.

    Theorems 3 and 4 are stated for the paper's model where A and D come
    from different predicates; with a shared element the estimators
    count the self-stab the strict join excludes, so unbiasedness only
    holds on disjoint operands (see
    :func:`repro.qa.generators.disjoint_operands`).
    """
    case = random_case(case_seed, max_nodes=GATE_CASE_NODES)
    ancestors, descendants = disjoint_operands(case)
    exact = containment_join_size(ancestors, descendants)
    return ancestors, descendants, case.workspace, exact


def _trial_values(
    method: str,
    ancestors: NodeSet,
    descendants: NodeSet,
    workspace: Workspace,
    trials: int,
    seed: int,
) -> np.ndarray:
    estimator = make_estimator(
        method, num_samples=GATE_SAMPLES, seed=seed
    )
    results = estimator.estimate_trials(
        ancestors, descendants, trials, workspace
    )
    return np.array([r.value for r in results], dtype=float)


def unbiasedness_gate(
    method: str, case_seed: int, trials: int = UNBIASEDNESS_TRIALS
) -> GateResult:
    """CLT z-test that the trial mean matches the exact join size."""
    ancestors, descendants, workspace, exact = _gate_workload(case_seed)
    values = _trial_values(
        method,
        ancestors,
        descendants,
        workspace,
        trials,
        seed=case_seed ^ 0xA11CE,
    )
    mean = float(values.mean())
    std = float(values.std(ddof=1))
    if std == 0.0:
        # Degenerate sampling (m >= |D| or constant counts): the only
        # unbiased constant is the exact size itself.
        passed = mean == float(exact)
        statistic = 0.0 if passed else math.inf
    else:
        statistic = abs(mean - exact) * math.sqrt(trials) / std
        passed = statistic < Z_CRITICAL_99
    return GateResult(
        gate="unbiasedness",
        method=method,
        case_seed=case_seed,
        passed=passed,
        statistic=statistic,
        threshold=Z_CRITICAL_99,
        detail={
            "trials": trials,
            "samples_per_trial": GATE_SAMPLES,
            "exact": exact,
            "trial_mean": mean,
            "trial_std": std,
        },
    )


def concentration_gate(
    method: str,
    case_seed: int,
    trials: int = CONCENTRATION_TRIALS,
    delta: float = CONCENTRATION_DELTA,
) -> GateResult:
    """Empirical check of the Hoeffding concentration bound for IM/PM."""
    if method not in ("IM", "PM"):
        raise ValueError(f"concentration gate covers IM/PM, not {method}")
    a, d, w, exact = _gate_workload(case_seed)
    height = max(1, _stabbing_height(a))
    scale = len(d) if method == "IM" else w.width
    # Invert 2*exp(-2 m t^2 / H^2) = delta for the per-sample mean
    # deviation t, then widen to the estimate's scale.
    t = height * math.sqrt(math.log(2.0 / delta) / (2.0 * GATE_SAMPLES))
    epsilon = scale * t
    values = _trial_values(
        method, a, d, w, trials, seed=case_seed ^ 0xB0B
    )
    violations = int(np.count_nonzero(np.abs(values - exact) > epsilon))
    # Binomial 99.9% envelope around delta*T: a sound bound stays under
    # it; heavier-than-promised tails pile up violations far above it.
    expected = delta * trials
    allowed = math.ceil(
        expected + 3.29 * math.sqrt(expected * (1.0 - delta)) + 1.0
    )
    return GateResult(
        gate="concentration",
        method=method,
        case_seed=case_seed,
        passed=violations <= allowed,
        statistic=float(violations),
        threshold=float(allowed),
        detail={
            "trials": trials,
            "samples_per_trial": GATE_SAMPLES,
            "delta": delta,
            "epsilon": epsilon,
            "height": height,
            "scale": int(scale),
            "exact": exact,
        },
    )


def run_statistical_gates(
    methods: tuple[str, ...] = ("IM", "PM"),
    case_seeds: tuple[int, ...] = GATE_CASE_SEEDS,
) -> list[GateResult]:
    """All unbiasedness + concentration gates over the gate workloads."""
    results = []
    for case_seed in case_seeds:
        for method in methods:
            results.append(unbiasedness_gate(method, case_seed))
            results.append(concentration_gate(method, case_seed))
    return results
