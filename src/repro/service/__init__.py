"""Estimation service: a concurrent, deadline-aware serving front-end.

The package's estimators answer one call at a time; this subsystem
serves them the way an optimizer consumes them — many concurrent
requests, repeated configurations, per-request latency budgets.  See
:class:`EstimationService` for the mechanism inventory (micro-batching,
result memoization, deadlines with graceful degradation, load shedding,
circuit breaking) and :mod:`repro.service.bench` for the workload it is
measured on.
"""

from repro.service import wire
from repro.service.degrade import DegradationLadder
from repro.service.engine import CircuitBreaker, EstimationService
from repro.service.queue import RequestQueue
from repro.service.request import (
    LADDER,
    EstimateRequest,
    EstimateResponse,
    ServiceFuture,
)

__all__ = [
    "LADDER",
    "CircuitBreaker",
    "DegradationLadder",
    "EstimateRequest",
    "EstimateResponse",
    "EstimationService",
    "RequestQueue",
    "ServiceFuture",
    "wire",
]
