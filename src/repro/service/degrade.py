"""Graceful degradation: cheaper answers when full fidelity won't fit.

Under deadline pressure, an open circuit breaker, or overload, the
service does not error — it walks a fixed ladder of progressively
cheaper estimators and returns the best answer the remaining budget
allows (paper Section 6 frames exactly this trade: statistics already
in the catalog cost nothing at plan time, sampling costs base-data
access).

Rungs, in order:

``requested`` (level 0)
    The estimator the caller asked for, at full fidelity.  Not handled
    here — the engine runs it.

``catalog`` (level 1)
    A plan-time answer from a :class:`~repro.catalog.StatisticsCatalog`:
    both operands' tags are catalogued with matching cardinalities, so
    ``estimate_join`` reads prebuilt PL histograms (or two-sample
    summaries) with no base-data access.  Skipped when no catalog is
    attached or the operands are not the catalogued sets.

``bound`` (level 2)
    The closed-form structural bound of Section 3.1
    (:func:`~repro.estimators.bounds.join_size_bounds`): the estimate is
    the upper bound, with the full enclosure in the details.  Costs one
    O(|A|) scan (cached on the NodeSet after the first call) and never
    fails, so every request can always be answered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.estimators.base import Estimate
from repro.estimators.bounds import join_size_bounds
from repro.service.request import LADDER, EstimateRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog import StatisticsCatalog


class DegradationLadder:
    """Produce the best sub-full-fidelity estimate for a request.

    Args:
        catalog: optional statistics catalog enabling the ``catalog``
            rung for operands whose tags it holds.
    """

    def __init__(self, catalog: "StatisticsCatalog | None" = None) -> None:
        self.catalog = catalog

    def degrade(self, request: EstimateRequest) -> tuple[Estimate, int]:
        """The cheapest-adequate fallback: ``(estimate, ladder_level)``.

        Tries the ``catalog`` rung first and falls through to ``bound``,
        which always succeeds.
        """
        estimate = self._from_catalog(request)
        if estimate is not None:
            return estimate, LADDER.index("catalog")
        return self._from_bound(request), LADDER.index("bound")

    # ------------------------------------------------------------------
    # Rungs
    # ------------------------------------------------------------------

    def _from_catalog(self, request: EstimateRequest) -> Estimate | None:
        """Level 1, or None when the catalog cannot answer this request.

        The catalog stores summaries per *tag*; it can stand in for the
        request only when each operand's name is a catalogued tag whose
        stored cardinality matches the operand — a same-named but
        filtered node set must not be answered from whole-tag
        statistics.
        """
        catalog = self.catalog
        if catalog is None:
            return None
        a, d = request.ancestors, request.descendants
        for operand in (a, d):
            if operand.name not in catalog:
                return None
            if catalog.cardinality(operand.name) != len(operand):
                return None
        result = catalog.estimate_join(a.name, d.name)
        return Estimate(
            result.value,
            result.estimator,
            mre=result.mre,
            details={**result.details, "degraded_from": request.method},
        )

    @staticmethod
    def _from_bound(request: EstimateRequest) -> Estimate:
        """Level 2: the structural upper bound — always answerable."""
        bounds = join_size_bounds(request.ancestors, request.descendants)
        return Estimate(
            float(bounds.upper),
            "BOUND",
            details={
                "bound_lower": bounds.lower,
                "bound_upper": bounds.upper,
                "degraded_from": request.method,
            },
        )
