"""The estimation service engine: workers, batching, deadlines, breaker.

:class:`EstimationService` is a thread-based front-end over the
package's estimators, built for the optimizer-facing serving shape the
paper assumes (Section 6: estimation happens *per candidate plan*, so
one optimization pass asks for the same few joins many times under
slightly different configurations).  It layers four mechanisms over the
existing bulk execution paths:

**Micro-batching.**  Workers draw coalesced batches from the
:class:`~repro.service.queue.RequestQueue` — compatible sampling
requests execute as one
:meth:`~repro.estimators.sampling_base.SamplingEstimator.estimate_across`
kernel pass, amortizing index construction and probe dispatch.

**Result memoization with singleflight.**  A *seeded* request pins its
RNG stream, making its estimate a pure function of (operand
fingerprints, method, config); deterministic methods (PL, PH, COV,
WAVELET) are pure functions outright.  Repeats are answered from a
content-keyed LRU at submission time, and duplicates inside one batch
compute once.  Unseeded stochastic requests are never memoized — they
owe the caller fresh randomness.

**Deadlines with graceful degradation.**  A request's relative deadline
is checked when it is scheduled: already past due, breaker open, or
predicted (EWMA) latency exceeding the remaining budget all route the
request down the :class:`~repro.service.degrade.DegradationLadder`
instead of erroring.  A worker cannot interrupt a running kernel, so a
full-fidelity run that finishes late is still returned — flagged
``deadline_missed`` — and counts against the method's breaker.

**Load shedding and circuit breaking.**  A full queue sheds the request
inline (bottom ladder rung, status ``"shed"``) rather than queueing
unboundedly; a method that keeps failing or missing deadlines trips its
:class:`CircuitBreaker`, short-circuiting further full-fidelity
attempts to the ladder until a cool-off probe succeeds.  A bursting
single caller (``map``) admits through
:meth:`~repro.service.queue.RequestQueue.put_many` and drains inline
when the queue fills, so its own burst coalesces into full micro-batches
instead of being shed against itself.

**Multi-process scatter (``processes=K``).**  With ``processes=K >= 2``
the service forks a persistent
:class:`~repro.shard.pool.ShardWorkerPool` (before any service thread
starts): operand arrays are published once into shared-memory arenas,
and each batchable micro-batch is scattered as contiguous configuration
chunks over the workers, gathered in order — bit-identical to the local
``estimate_across`` pass because every estimator's RNG stream is seeded
by its own config.  Deadlines, degradation and the breaker wrap the
whole scatter; any pool failure falls back to local execution, never to
a failed request.  ``close()`` stops the pool and unlinks every arena.

Every decision increments ``service.*`` metrics in the service's own
always-on registry (exposed by :meth:`EstimationService.stats`) and is
mirrored into the ambient :mod:`repro.obs` registry whenever
observation is enabled.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import ServiceError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate, Estimator
from repro.estimators.registry import make_estimator
from repro.estimators.sampling_base import SamplingEstimator
from repro.feedback.correction import CorrectionModel
from repro.feedback.runtime import record_feedback
from repro.feedback.store import FeedbackStore, featurize, query_class
from repro.obs import runtime as _obs
from repro.router.base import BOUND_METHOD, Router
from repro.router.registry import resolve_router
from repro.obs.metrics import MetricsRegistry
from repro.perf.cache import SummaryCache, use_cache
from repro.perf.index_cache import IndexCache, use_index_cache
from repro.service.degrade import DegradationLadder
from repro.service.queue import RequestQueue
from repro.service.request import (
    LADDER,
    EstimateRequest,
    EstimateResponse,
    ServiceFuture,
)
from repro.shard.pool import ShardWorkerPool


class _ResultMemo(SummaryCache):
    """Content-keyed LRU of finished estimates (``service_memo.*``)."""

    metric_kind = "service_memo"

    def _value_nbytes(self, value: Any) -> int:
        # An Estimate is a value + name + a small details dict; a flat
        # per-entry estimate keeps the hot insert path O(1).
        return 512


class CircuitBreaker:
    """Per-method failure tracker with EWMA latency prediction.

    States: *closed* (normal), *open* (too many consecutive failures —
    full-fidelity attempts are skipped until ``cooloff_s`` elapses),
    *half-open* (cool-off expired; exactly one probe request runs, its
    outcome closing or re-opening the breaker).

    A "failure" is an estimator exception or a missed deadline.  The
    EWMA of observed latencies doubles as the admission predictor: a
    deadline-carrying request whose remaining budget is below the
    predicted latency degrades immediately instead of starting work it
    cannot finish in time.

    ``clock`` is the monotonic time source; tests inject a fake to
    drive the open/half-open transitions without real sleeps.
    """

    __slots__ = (
        "threshold",
        "cooloff_s",
        "alpha",
        "_lock",
        "_consecutive",
        "_opened_at",
        "_half_open_probe",
        "ewma_s",
        "_clock",
    )

    def __init__(
        self,
        threshold: int = 5,
        cooloff_s: float = 1.0,
        alpha: float = 0.3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooloff_s = cooloff_s
        self.alpha = alpha
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive = 0
        self._opened_at: float | None = None
        self._half_open_probe = False
        self.ewma_s: float | None = None

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.cooloff_s:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """May a full-fidelity attempt run right now?

        In the half-open state only the first caller gets True (the
        probe); everyone else stays on the ladder until the probe
        reports back.
        """
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at < self.cooloff_s:
                return False
            if self._half_open_probe:
                return False
            self._half_open_probe = True
            return True

    def predicted_latency(self) -> float | None:
        return self.ewma_s

    def record(self, latency_s: float, ok: bool) -> None:
        with self._lock:
            self.ewma_s = (
                latency_s
                if self.ewma_s is None
                else self.alpha * latency_s
                + (1.0 - self.alpha) * self.ewma_s
            )
            self._half_open_probe = False
            if ok:
                self._consecutive = 0
                self._opened_at = None
            else:
                self._consecutive += 1
                if self._consecutive >= self.threshold:
                    self._opened_at = self._clock()


class EstimationService:
    """Concurrent micro-batching front-end over the estimator registry.

    Args:
        workers: worker threads draining the request queue.
        processes: worker *processes* for scatter/gather execution of
            batchable micro-batches (0 or 1 = single-process; ``K >= 2``
            forks a persistent shared-memory pool).  Orthogonal to
            ``workers`` — threads schedule, processes compute.
        max_batch: cap on requests coalesced into one kernel pass.
        queue_size: admission bound; a full queue sheds (the request is
            still answered — inline, from the bottom ladder rung).
        catalog: optional :class:`~repro.catalog.StatisticsCatalog`
            enabling the ladder's plan-time ``catalog`` rung.
        summary_cache: shared summary cache installed ambiently around
            every execution (histogram methods reuse built summaries
            across requests); defaults to a fresh one.
        index_cache: shared probe-index cache for the sampling methods;
            defaults to a fresh one.
        memoize: answer repeat seeded/deterministic requests from a
            content-keyed result cache (see
            :meth:`~repro.service.request.EstimateRequest.result_key`).
        memo_size: entries kept in that result cache.
        breaker_threshold / breaker_cooloff_s: consecutive failures that
            trip a method's :class:`CircuitBreaker`, and how long it
            stays open.
        estimator_factory: hook constructing estimators from
            ``(method, **config)``; the default is
            :func:`repro.estimators.registry.make_estimator`.  Tests
            inject faulty or slow estimators here.
        router: optional :class:`~repro.router.Router` (or a name
            :func:`~repro.router.resolve_router` accepts) choosing the
            answering method per query class.  Off by default: with no
            router the service answers exactly the method requested,
            preserving every bit-identity guarantee.  Routed responses
            disclose the chosen arm in ``routed_method``.
        feedback: optional :class:`~repro.feedback.FeedbackStore`
            recording every response (query class, method, estimate,
            latency, degradation reason; truth when known).  ``True``
            creates a fresh store; a router with no explicit store gets
            one automatically (it needs the history).  Exposed as
            ``service.feedback``.
        correction: optional fitted
            :class:`~repro.feedback.CorrectionModel` applied as a
            post-multiplier to full-fidelity ("ok", ladder level 0)
            answers.  Off by default; unfitted classes multiply by
            exactly 1.0, so estimates stay bit-identical.
        live: optional :class:`~repro.stream.LiveWorkspace` (or a
            multi-tenant :class:`~repro.stream.CatalogStore`) serving
            continuously mutating operands.  String operands to
            :meth:`submit`/:meth:`estimate` are then tag names,
            snapshotted atomically at submit; responses disclose
            ``staleness_s`` and ``applied_seq``, and a per-request
            ``max_staleness_s`` degrades violating requests down the
            ladder with reason ``"stale"``.  The workspace's writes
            invalidate this service's summary/index caches under the
            mutated fingerprints only (co-tenant entries survive).

    The service starts its workers on construction and is a context
    manager — ``with EstimationService() as svc: ...`` shuts it down on
    exit.  After :meth:`close`, submissions raise
    :class:`~repro.core.errors.ServiceError`.
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        processes: int = 0,
        max_batch: int = 16,
        queue_size: int = 1024,
        catalog: Any = None,
        summary_cache: SummaryCache | None = None,
        index_cache: IndexCache | None = None,
        memoize: bool = True,
        memo_size: int = 4096,
        breaker_threshold: int = 5,
        breaker_cooloff_s: float = 1.0,
        estimator_factory: Callable[..., Estimator] | None = None,
        router: Router | str | None = None,
        feedback: FeedbackStore | bool | None = None,
        correction: CorrectionModel | None = None,
        live: Any = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._router: Router | None = (
            resolve_router(router) if router is not None else None
        )
        if feedback is True or (feedback is None and self._router):
            feedback = FeedbackStore()
        elif feedback is False:
            feedback = None
        self.feedback: FeedbackStore | None = feedback
        self._correction = correction
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        if processes < 0:
            raise ServiceError(
                f"processes must be >= 0, got {processes}"
            )
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch
        self.summary_cache = (
            summary_cache if summary_cache is not None else SummaryCache()
        )
        self.index_cache = (
            index_cache if index_cache is not None else IndexCache()
        )
        self._memo = _ResultMemo(maxsize=memo_size) if memoize else None
        self.live = live
        if live is not None:
            # Bump-on-write invalidation flows into this service's
            # caches: the workspace (or every tenant of the store)
            # drops its pre-mutation fingerprints from them on apply.
            live.attach_caches(self.summary_cache, self.index_cache)
        self._queue = RequestQueue(maxsize=queue_size)
        self._ladder = DegradationLadder(catalog=catalog)
        self._factory = (
            estimator_factory
            if estimator_factory is not None
            else make_estimator
        )
        self._breaker_threshold = breaker_threshold
        self._breaker_cooloff_s = breaker_cooloff_s
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self.metrics = MetricsRegistry()
        # Resolution signalling is one service-wide condition (futures
        # are resolved exactly once, waiters are rare) and the hot-path
        # metric handles are bound once — per-request recording is then
        # attribute calls, not name lookups.
        self._resolution = threading.Condition()
        self._m_responses = self.metrics.counter("service.responses")
        self._m_wait = self.metrics.histogram("service.wait_s")
        self._m_latency = self.metrics.histogram("service.latency_s")
        self._m_deadline_miss = self.metrics.counter(
            "service.deadline_miss"
        )
        self._inflight: dict[Any, ServiceFuture] = {}
        self._inflight_lock = threading.Lock()
        self._m_memo_hits = self.metrics.counter("service.memo_hits")
        self._m_inflight_hits = self.metrics.counter(
            "service.inflight_hits"
        )
        self._m_submitted = self.metrics.counter("service.submitted")
        self._m_batches = self.metrics.counter("service.batches")
        self._m_coalesced = self.metrics.counter("service.coalesced")
        self._m_singleflight = self.metrics.counter(
            "service.singleflight_hits"
        )
        self._m_routed = self.metrics.counter("service.routed")
        self._m_staleness = self.metrics.histogram("service.staleness_s")
        self._m_staleness_violations = self.metrics.counter(
            "service.staleness_violations"
        )
        self._m_batch_size = self.metrics.histogram("service.batch_size")
        self._m_queue_depth = self.metrics.histogram(
            "service.queue_depth"
        )
        self._m_run = self.metrics.histogram("service.run_s")
        self._closed = False
        # The pool forks *before* any service thread exists, so worker
        # processes never inherit a mid-flight lock.  Scatter only runs
        # under the default estimator factory: workers rebuild
        # estimators from configs, which must mean what it means here.
        self._pool: ShardWorkerPool | None = (
            ShardWorkerPool(processes) if processes >= 2 else None
        )
        self._scatter_ok = (
            self._pool is not None and self._factory is make_estimator
        )
        self._m_scatters = self.metrics.counter("service.scatters")
        self._m_scatter_fallbacks = self.metrics.counter(
            "service.scatter_fallbacks"
        )
        self._m_wire_requests = self.metrics.counter(
            "service.wire_requests"
        )
        self._m_wire_encode = self.metrics.histogram(
            "service.wire_encode_s"
        )
        self._m_wire_decode = self.metrics.histogram(
            "service.wire_decode_s"
        )
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-estimation-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop admitting, finish queued work, join the workers.

        Requests still queued at close are drained and answered from
        the bottom ladder rung (status ``"shed"``) so no future is left
        unresolved.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.close()
        for thread in self._workers:
            thread.join(timeout)
        for future in self._queue.drain():
            self._resolve_shed(future, reason="shutdown")
        if self._pool is not None:
            # Last: stops worker processes and unlinks every
            # shared-memory arena (the leak-proofing contract).
            self._pool.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        ancestors: NodeSet | str | None = None,
        descendants: NodeSet | str | None = None,
        method: str = "PL",
        *,
        request: EstimateRequest | None = None,
        workspace: Workspace | None = None,
        deadline_s: float | None = None,
        max_staleness_s: float | None = None,
        tenant: str | None = None,
        request_id: str | None = None,
        **config: Any,
    ) -> ServiceFuture:
        """Submit one request; returns immediately with a future.

        Either pass a prebuilt :class:`EstimateRequest` via ``request=``
        or the same arguments :func:`repro.api.estimate` takes plus an
        optional ``deadline_s``.  Validation (operand types, method
        resolution) happens here, in the calling thread.

        With a live workspace (``EstimationService(live=...)``), string
        operands name live tags: both are snapshotted atomically off
        the workspace — ``tenant=`` selects the store tenant — and the
        response disclosed ``staleness_s``/``applied_seq``.  A request
        whose snapshot ages past ``max_staleness_s`` before executing
        degrades with reason ``"stale"``.
        """
        live = snapshot_seq = None
        if request is None and (
            isinstance(ancestors, str)
            or isinstance(descendants, str)
            or tenant is not None
        ):
            live, ancestors, descendants, snapshot_seq = (
                self._snapshot_live(
                    ancestors, descendants, tenant, max_staleness_s
                )
            )
        future, needs_queue = self._prepare(
            ancestors,
            descendants,
            method,
            request=request,
            workspace=workspace,
            deadline_s=deadline_s,
            max_staleness_s=max_staleness_s,
            request_id=request_id,
            config=config,
            live=live,
            snapshot_seq=snapshot_seq,
        )
        if needs_queue:
            if not self._queue.put(future):
                self._count("service.shed")
                self._resolve_shed(future, reason="overload")
            else:
                self._m_submitted.inc()
        return future

    def _snapshot_live(
        self,
        ancestors: NodeSet | str | None,
        descendants: NodeSet | str | None,
        tenant: str | None,
        max_staleness_s: float | None,
    ) -> tuple[Any, NodeSet, NodeSet, int]:
        """Resolve tag-name operands off the live workspace.

        Catches the workspace up first when its backlog already exceeds
        the request's bound (a non-blocking attempt: a concurrent writer
        holding the apply lock leaves the backlog for the scheduling-
        time staleness check), then snapshots every string operand at
        one ``applied_seq``.
        """
        live = self._live_workspace(tenant)
        if (
            max_staleness_s is not None
            and live.staleness_s(self._clock()) > max_staleness_s
        ):
            live.catch_up(blocking=False)
        names = [
            operand
            for operand in (ancestors, descendants)
            if isinstance(operand, str)
        ]
        sets, seq = live.snapshot(*names)
        resolved = iter(sets)
        if isinstance(ancestors, str):
            ancestors = next(resolved)
        if isinstance(descendants, str):
            descendants = next(resolved)
        live.estimates_served += 1
        return live, ancestors, descendants, seq

    def _live_workspace(self, tenant: str | None) -> Any:
        """The live workspace serving ``tenant`` (or the only one)."""
        live = self.live
        if live is None:
            raise ServiceError(
                "string operands need a live workspace: construct the "
                "service with live=LiveWorkspace(...) or a CatalogStore"
            )
        if hasattr(live, "tenants"):  # CatalogStore
            if tenant is None:
                tenants = live.tenants()
                if len(tenants) != 1:
                    raise ServiceError(
                        f"tenant= is required with a multi-tenant "
                        f"store; known tenants: {tenants}"
                    )
                tenant = tenants[0]
            return live.get(tenant)
        if tenant is not None and tenant != live.tenant:
            raise ServiceError(
                f"unknown tenant {tenant!r}: this service serves "
                f"{live.tenant!r}"
            )
        return live

    def _prepare(
        self,
        ancestors: NodeSet | None = None,
        descendants: NodeSet | None = None,
        method: str = "PL",
        *,
        request: EstimateRequest | None = None,
        workspace: Workspace | None = None,
        deadline_s: float | None = None,
        max_staleness_s: float | None = None,
        request_id: str | None = None,
        config: dict[str, Any] | None = None,
        live: Any = None,
        snapshot_seq: int | None = None,
    ) -> tuple[ServiceFuture, bool]:
        """Validate, memo-check and dedup one request.

        Returns the future and whether it still needs queueing — False
        when it was answered from the result memo or attached to an
        identical in-flight lead.
        """
        if self._closed:
            raise ServiceError("service is closed")
        if request is None:
            request = EstimateRequest(
                ancestors=ancestors,
                descendants=descendants,
                method=method,
                workspace=workspace,
                config=config if config is not None else {},
                deadline_s=deadline_s,
                max_staleness_s=max_staleness_s,
                request_id=request_id,
            )
        routed_method: str | None = None
        routed_from: str | None = None
        if self._router is not None:
            arm, arm_config = self._router.route(request, self.feedback)
            routed_method = arm
            routed_from = request.method
            self._m_routed.inc()
            self._count(f"service.routed.{arm}")
            if arm != BOUND_METHOD and (
                arm != request.method or arm_config != request.config
            ):
                # Rebuild (rather than mutate) so validation reruns and
                # the future derives its memo key from the routed form.
                request = EstimateRequest(
                    ancestors=request.ancestors,
                    descendants=request.descendants,
                    method=arm,
                    workspace=request.workspace,
                    config=arm_config,
                    deadline_s=request.deadline_s,
                    max_staleness_s=request.max_staleness_s,
                    request_id=request.request_id,
                )
        now = self._clock()
        future = ServiceFuture(
            request, enqueued_at=now, cond=self._resolution
        )
        future.routed_method = routed_method
        future.routed_from = routed_from
        future.live = live
        future.snapshot_seq = snapshot_seq
        if routed_method == BOUND_METHOD:
            # The bound arm never queues: the ladder's bottom rung is one
            # cached O(|A|) scan, answered inline in the calling thread.
            estimate, level = (
                DegradationLadder._from_bound(request),
                LADDER.index("bound"),
            )
            self._resolve(
                future,
                estimate,
                status="ok",
                ladder_level=level,
                deadline_missed=False,
                degraded_reason=None,
                batch_size=1,
                started_at=now,
            )
            return future, False
        memo_key = future.result_key if self._memo is not None else None
        if memo_key is not None:
            cached = self._memo_get(memo_key)
            if cached is not None:
                self._m_memo_hits.inc()
                self._resolve(
                    future,
                    cached,
                    status="ok",
                    ladder_level=0,
                    deadline_missed=False,
                    degraded_reason=None,
                    batch_size=1,
                    started_at=now,
                )
                return future, False
            # Piggyback on an identical request already in flight: the
            # duplicate never enters the queue; the lead resolves it.
            with self._inflight_lock:
                lead = self._inflight.get(memo_key)
                if lead is not None and lead.followers is not None:
                    lead.followers.append(future)
                    self._m_inflight_hits.inc()
                    return future, False
                self._inflight[memo_key] = future
                future.followers = []
        return future, True

    def estimate(
        self,
        ancestors: NodeSet | str,
        descendants: NodeSet | str,
        method: str = "PL",
        *,
        workspace: Workspace | None = None,
        deadline_s: float | None = None,
        max_staleness_s: float | None = None,
        tenant: str | None = None,
        timeout: float | None = None,
        **config: Any,
    ) -> EstimateResponse:
        """Synchronous convenience: submit and wait for the response."""
        future = self.submit(
            ancestors,
            descendants,
            method,
            workspace=workspace,
            deadline_s=deadline_s,
            max_staleness_s=max_staleness_s,
            tenant=tenant,
            **config,
        )
        if not self._workers and not future.done():
            self.help_drain((future,))
        return future.result(timeout)

    def estimate_wire(
        self, payload: bytes, *, timeout: float | None = None
    ) -> bytes:
        """Serve one serialized request; returns the serialized response.

        Accepts either wire format — binary (sniffed by magic bytes,
        operand arrays decoded zero-copy) or the JSON compatibility
        form — and answers in the format the request arrived in.
        Decode and encode time are metered separately from estimation
        (``service.wire_decode_s`` / ``service.wire_encode_s`` in
        :meth:`stats`, mirrored into :mod:`repro.obs` when observation
        is on), so wire overhead never hides inside service latency.
        """
        from repro.service import wire

        start = time.perf_counter()
        request, wire_format = wire.decode_request(payload)
        decode_s = time.perf_counter() - start
        self._m_wire_requests.inc()
        self._m_wire_decode.observe(decode_s)
        self._count(f"service.wire_{wire_format}")
        if _obs.enabled():
            _obs.record_service(
                counters={"service.wire_requests": 1},
                histograms={"service.wire_decode_s": decode_s},
            )
        future = self.submit(request=request)
        if not self._workers and not future.done():
            self.help_drain((future,))
        response = future.result(timeout)
        start = time.perf_counter()
        encoded = wire.encode_response(response, wire_format)
        encode_s = time.perf_counter() - start
        self._m_wire_encode.observe(encode_s)
        if _obs.enabled():
            _obs.record_service(
                histograms={"service.wire_encode_s": encode_s}
            )
        return encoded

    def cardinality_generator(
        self,
        method: str = "PL",
        *,
        deadline_s: float | None = None,
        **config: Any,
    ) -> "Any":
        """A planner-facing generator backed by this service.

        Returns a :class:`~repro.optimizer.generator.ServiceGenerator`
        whose pair estimates are service requests — memoized,
        micro-batched, and (with ``deadline_s``) degradation-guarded, so
        an optimization pass never stalls on a slow estimator.  Pass the
        result to :func:`repro.api.optimize`::

            with repro.serve(catalog=catalog, workers=0) as service:
                generator = service.cardinality_generator(
                    "IM", deadline_s=0.05, num_samples=100, seed=7,
                )
                plan = repro.optimize(sets, generator, workspace=ws)

        Args:
            method: estimator name for the pair requests.
            deadline_s: per-request deadline; None = full fidelity.
            **config: estimator configuration sent with each request.
        """
        from repro.optimizer.generator import ServiceGenerator

        return ServiceGenerator(
            self, method, deadline_s=deadline_s, **config
        )

    def map(
        self,
        requests: Iterable[EstimateRequest],
        timeout: float | None = None,
    ) -> list[EstimateResponse]:
        """Submit many requests, wait for all, preserve order.

        The burst is admitted through ``put_many`` — bulk admission
        under one queue lock, so compatible requests are fully bucketed
        before the first batch is drawn and coalesce into real
        micro-batches.  When the burst exceeds the queue bound, the
        caller drains a batch inline and admits the remainder instead
        of shedding its own requests against itself; shedding remains
        the contract for *competing* callers under genuine overload.

        The calling thread never sleeps while its requests are queued —
        it helps drain (caller-runs), so a single-client burst executes
        without a thread handoff per micro-batch; the worker pool still
        serves whatever the caller does not pick up.
        """
        futures: list[ServiceFuture] = []
        pending: list[ServiceFuture] = []
        for request in requests:
            future, needs_queue = self._prepare(request=request)
            futures.append(future)
            if needs_queue:
                pending.append(future)
        offset = 0
        while offset < len(pending):
            admitted = self._queue.put_many(pending[offset:])
            if admitted:
                self._m_submitted.inc(admitted)
                offset += admitted
            if offset >= len(pending):
                break
            # Queue full (or closed): make room by draining one batch
            # in this thread before admitting the rest.
            batch = self._queue.take_batch(self.max_batch, timeout=0.0)
            if batch:
                with use_cache(self.summary_cache), use_index_cache(
                    self.index_cache
                ):
                    self._execute_batch(batch)
            elif self._queue.closed:
                for future in pending[offset:]:
                    self._count("service.shed")
                    self._resolve_shed(future, reason="shutdown")
                break
            # else: workers drained everything we admitted; loop and
            # re-admit the remainder.
        self.help_drain(futures)
        return [f.result(timeout) for f in futures]

    def help_drain(self, futures: Sequence[ServiceFuture]) -> None:
        """Execute queued micro-batches in the calling thread until
        every future in ``futures`` is either resolved or in flight on a
        worker.

        Work-conserving, not selective: the caller takes whatever batch
        is oldest (its own requests or another client's) — batches it
        does not pick up are handled by the worker pool as usual.
        """
        index = 0
        total = len(futures)
        while index < total:
            if futures[index].done():
                index += 1
                continue
            batch = self._queue.take_batch(self.max_batch, timeout=0.0)
            if not batch:
                return
            with use_cache(self.summary_cache), use_index_cache(
                self.index_cache
            ):
                self._execute_batch(batch)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Queue depth, counters, latency percentiles, breaker states."""
        latency = self.metrics.histogram("service.latency_s")
        wait = self.metrics.histogram("service.wait_s")
        batch = self.metrics.histogram("service.batch_size")
        counters = self.metrics.counters()
        # Per-method, per-reason degradation breakdown: the flat
        # ``service.degraded_by.<method>.<reason>`` counters, unfolded
        # into a nested mapping (router reward accounting and obs-report
        # both want it this shape; method and reason names contain no
        # dots).
        degraded_by: dict[str, dict[str, int]] = {}
        prefix = "service.degraded_by."
        for name, value in counters.items():
            if name.startswith(prefix):
                method, _, reason = name[len(prefix):].partition(".")
                degraded_by.setdefault(method, {})[reason] = value
        with self._breakers_lock:
            breakers = {
                name: {
                    "state": breaker.state,
                    "ewma_s": breaker.ewma_s,
                }
                for name, breaker in self._breakers.items()
            }
        return {
            "queue_depth": len(self._queue),
            "closed": self._closed,
            "counters": counters,
            "degraded_by": degraded_by,
            "latency_p50_s": latency.percentile(50.0),
            "latency_p99_s": latency.percentile(99.0),
            "wait_p99_s": wait.percentile(99.0),
            "mean_batch_size": batch.mean,
            # Wire codec time, reported apart from estimation latency:
            # encode and decode are metered around the codec calls only.
            "wire": {
                "requests": self._m_wire_requests.value,
                "decode_mean_s": self._m_wire_decode.mean,
                "decode_p99_s": self._m_wire_decode.percentile(99.0),
                "encode_mean_s": self._m_wire_encode.mean,
                "encode_p99_s": self._m_wire_encode.percentile(99.0),
            },
            "breakers": breakers,
            "router": (
                self._router.describe()
                if self._router is not None
                else None
            ),
            "feedback": (
                self.feedback.stats()
                if self.feedback is not None
                else None
            ),
            "memo": self._memo.stats() if self._memo else None,
            "summary_cache": self.summary_cache.stats(),
            "index_cache": self.index_cache.stats(),
            "pool": (
                self._pool.stats() if self._pool is not None else None
            ),
            "staleness_p99_s": self._m_staleness.percentile(99.0),
            "staleness_violations": self._m_staleness_violations.value,
            "live": self.live.stats() if self.live is not None else None,
        }

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        queue = self._queue
        while True:
            batch = queue.take_batch(self.max_batch, timeout=0.1)
            if not batch:
                if queue.closed:
                    return
                continue
            try:
                with use_cache(self.summary_cache), use_index_cache(
                    self.index_cache
                ):
                    self._execute_batch(batch)
            except BaseException as error:  # pragma: no cover - backstop
                for future in batch:
                    for follower in self._pop_followers(future):
                        follower.fail(error)
                    if not future.done():
                        future.fail(error)

    def _execute_batch(self, batch: list[ServiceFuture]) -> None:
        started_at = self._clock()
        self._m_batches.inc()
        self._m_batch_size.observe(float(len(batch)))
        self._m_queue_depth.observe(float(len(self._queue)))
        if len(batch) > 1:
            self._m_coalesced.inc(len(batch) - 1)
        if _obs.enabled():
            _obs.record_service(
                counters={"service.batches": 1},
                histograms={"service.batch_size": float(len(batch))},
            )

        breaker = self._breaker(batch[0].request.method)
        runnable: list[ServiceFuture] = []
        for future in batch:
            reason = self._degrade_reason(future, breaker, started_at)
            if reason is not None:
                self._resolve_degraded(
                    future, reason, started_at, len(batch)
                )
            else:
                runnable.append(future)
        if not runnable:
            return

        # Singleflight: duplicates of one memoizable request compute once.
        groups: dict[Any, list[ServiceFuture]] = {}
        distinct: list[ServiceFuture] = []
        for future in runnable:
            key = future.result_key if self._memo is not None else None
            if key is None:
                distinct.append(future)
                continue
            cached = self._memo_get(key)
            if cached is not None:
                self._m_memo_hits.inc()
                for hit in (future, *self._pop_followers(future)):
                    self._resolve(
                        hit,
                        cached,
                        status="ok",
                        ladder_level=0,
                        deadline_missed=self._missed(hit),
                        degraded_reason=None,
                        batch_size=len(batch),
                        started_at=started_at,
                    )
                continue
            group = groups.setdefault(key, [])
            if not group:
                distinct.append(future)
            group.append(future)

        if distinct:
            self._run_distinct(distinct, breaker, started_at, len(batch))

        for key, group in groups.items():
            lead = group[0]
            if lead.done() and lead._response is not None:
                response = lead._response
                if response.status == "ok" and self._memo is not None:
                    self._memo_put(key, response.estimate)
                for follower in group[1:]:
                    self._m_singleflight.inc()
                    self._resolve(
                        follower,
                        response.estimate,
                        status=response.status,
                        ladder_level=response.ladder_level,
                        deadline_missed=self._missed(follower),
                        degraded_reason=response.degraded_reason,
                        batch_size=len(batch),
                        started_at=started_at,
                    )
            else:  # lead failed terminally; followers degrade
                for follower in group[1:]:
                    self._resolve_degraded(
                        follower, "error", started_at, len(batch)
                    )

    def _run_distinct(
        self,
        futures: list[ServiceFuture],
        breaker: CircuitBreaker,
        started_at: float,
        batch_size: int,
    ) -> None:
        """Run full-fidelity requests, batched through ``estimate_across``
        when their estimators are compatible, sequentially otherwise."""
        request0 = futures[0].request
        try:
            estimators = [
                self._factory(f.request.method, **f.request.config)
                for f in futures
            ]
        except Exception:
            for future in futures:
                self._count("service.estimator_errors")
                self._resolve_degraded(
                    future, "error", started_at, batch_size
                )
            breaker.record(self._clock() - started_at, ok=False)
            return

        run_start = self._clock()
        results: list[Estimate] | None = None
        if len(futures) > 1 and SamplingEstimator.batchable(estimators):
            if self._scatter_ok:
                # Scatter the batch over the process pool: workers
                # rebuild the estimators from the (seed-bearing)
                # configs, so the gathered results are bit-identical
                # to the local pass below.  Any pool trouble falls
                # back to local execution.
                try:
                    results = self._pool.scatter(
                        request0.method,
                        [f.request.config for f in futures],
                        request0.ancestors,
                        request0.descendants,
                        request0.workspace,
                    )
                    self._m_scatters.inc()
                except ServiceError:
                    self._m_scatter_fallbacks.inc()
                    results = None
            if results is None:
                try:
                    results = SamplingEstimator.estimate_across(
                        estimators,
                        request0.ancestors,
                        request0.descendants,
                        request0.workspace,
                    )
                except Exception:
                    results = None  # fall through to sequential
        if results is not None:
            elapsed = self._clock() - run_start
            per_request = elapsed / len(futures)
            for future, estimate in zip(futures, results):
                self._finish_ok(
                    future, estimate, started_at, batch_size, per_request
                )
            breaker.record(per_request, ok=not self._missed(futures[0]))
            return

        for future, estimator in zip(futures, estimators):
            request = future.request
            one_start = self._clock()
            try:
                estimate = estimator.estimate(
                    request.ancestors,
                    request.descendants,
                    request.workspace,
                )
            except Exception:
                self._count("service.estimator_errors")
                self._resolve_degraded(
                    future, "error", started_at, batch_size
                )
                breaker.record(self._clock() - one_start, ok=False)
                continue
            elapsed = self._clock() - one_start
            self._finish_ok(
                future, estimate, started_at, batch_size, elapsed
            )
            breaker.record(elapsed, ok=not self._missed(future))

    def _finish_ok(
        self,
        future: ServiceFuture,
        estimate: Estimate,
        started_at: float,
        batch_size: int,
        run_seconds: float,
    ) -> None:
        missed = self._missed(future)
        if self._memo is not None and future.result_key is not None:
            # Memoize *before* detaching followers: a request submitted
            # in the gap either found this future in flight (and rides
            # below) or will hit the memo — never neither.
            self._memo_put(future.result_key, estimate)
        self._m_run.observe(run_seconds)
        self._resolve(
            future,
            estimate,
            status="ok",
            ladder_level=0,
            deadline_missed=missed,
            degraded_reason=None,
            batch_size=batch_size,
            started_at=started_at,
        )
        for follower in self._pop_followers(future):
            self._resolve(
                follower,
                estimate,
                status="ok",
                ladder_level=0,
                deadline_missed=self._missed(follower),
                degraded_reason=None,
                batch_size=batch_size,
                started_at=started_at,
            )

    # ------------------------------------------------------------------
    # Degradation / resolution plumbing
    # ------------------------------------------------------------------

    def _degrade_reason(
        self,
        future: ServiceFuture,
        breaker: CircuitBreaker,
        now: float,
    ) -> str | None:
        """Why this request should skip full fidelity (None = run it)."""
        if (
            future.live is not None
            and future.request.max_staleness_s is not None
            and future.live.staleness_of(future.snapshot_seq, now)
            > future.request.max_staleness_s
        ):
            # The operands were snapshotted at submit; mutations that
            # landed while the request queued cannot retroactively
            # enter the snapshot, so a too-old snapshot degrades
            # honestly instead of serving data the caller ruled out.
            return "stale"
        if future.deadline_at is None:
            return None
        if now >= future.deadline_at:
            return "deadline"
        if not breaker.allow():
            return "breaker"
        predicted = breaker.predicted_latency()
        if predicted is not None and predicted > future.deadline_at - now:
            return "predicted"
        return None

    def _missed(self, future: ServiceFuture) -> bool:
        return (
            future.deadline_at is not None
            and self._clock() > future.deadline_at
        )

    def _resolve_degraded(
        self,
        future: ServiceFuture,
        reason: str,
        started_at: float,
        batch_size: int,
    ) -> None:
        estimate, level = self._ladder.degrade(future.request)
        self._count("service.degraded")
        self._count(f"service.degraded.{reason}")
        self._count(
            f"service.degraded_by.{future.request.method}.{reason}"
        )
        self._resolve(
            future,
            estimate,
            status="degraded",
            ladder_level=level,
            deadline_missed=self._missed(future),
            degraded_reason=reason,
            batch_size=batch_size,
            started_at=started_at,
        )
        self._requeue_followers(future, reason)

    def _resolve_shed(self, future: ServiceFuture, reason: str) -> None:
        """Answer a request that never entered the queue (or was drained
        at shutdown) inline from the bottom ladder rung."""
        estimate, level = self._ladder.degrade(future.request)
        self._count("service.degraded")
        self._count(f"service.degraded.{reason}")
        self._count(
            f"service.degraded_by.{future.request.method}.{reason}"
        )
        self._resolve(
            future,
            estimate,
            status="shed",
            ladder_level=level,
            deadline_missed=self._missed(future),
            degraded_reason=reason,
            batch_size=1,
            started_at=self._clock(),
        )
        self._requeue_followers(future, reason)

    def _resolve(
        self,
        future: ServiceFuture,
        estimate: Estimate,
        *,
        status: str,
        ladder_level: int,
        deadline_missed: bool,
        degraded_reason: str | None,
        batch_size: int,
        started_at: float,
    ) -> None:
        now = self._clock()
        wait_s = max(0.0, started_at - future.enqueued_at)
        service_s = max(0.0, now - future.enqueued_at)
        request = future.request
        staleness_s: float | None = None
        applied_seq: int | None = None
        if future.live is not None:
            # Disclose the snapshot's staleness at response time: the
            # age of the oldest mutation it had not seen.  An "ok"
            # answer past the caller's bound (mutations landed after
            # the scheduling check) counts as a contract violation.
            applied_seq = future.snapshot_seq
            staleness_s = future.live.staleness_of(
                future.snapshot_seq, now
            )
            self._m_staleness.observe(staleness_s)
            if (
                status == "ok"
                and request.max_staleness_s is not None
                and staleness_s > request.max_staleness_s
            ):
                self._m_staleness_violations.inc()
        if self.feedback is not None:
            # Record the *raw* estimate: the correction model trains on
            # uncorrected values, so corrected answers must not feed
            # back into their own training signal.
            record_feedback(
                request.ancestors,
                request.descendants,
                future.routed_method or request.method,
                estimate.value,
                latency_s=service_s,
                status=status,
                degraded_reason=degraded_reason,
                request_id=request.request_id,
                store=self.feedback,
            )
        if (
            self._correction is not None
            and status == "ok"
            and future.routed_method != BOUND_METHOD
        ):
            qc = query_class(request.ancestors, request.descendants)
            corrected = self._correction.correct(
                estimate.value,
                qc,
                featurize(request.ancestors, request.descendants),
                method=future.routed_method or request.method,
            )
            if corrected != estimate.value:
                self._count("service.corrected")
                estimate = Estimate(
                    corrected,
                    estimate.estimator,
                    mre=estimate.mre,
                    details={
                        **estimate.details,
                        "corrected_from": estimate.value,
                        "correction_class": qc,
                    },
                )
        self._m_responses.inc()
        self._m_wait.observe(wait_s)
        self._m_latency.observe(service_s)
        if deadline_missed:
            self._m_deadline_miss.inc()
        if _obs.enabled():
            _obs.record_service(
                counters={"service.responses": 1},
                histograms={
                    "service.wait_s": wait_s,
                    "service.latency_s": service_s,
                },
            )
        future.resolve(
            EstimateResponse(
                estimate=estimate,
                status=status,
                ladder_level=ladder_level,
                ladder_name=LADDER[ladder_level],
                deadline_missed=deadline_missed,
                degraded_reason=degraded_reason,
                wait_s=wait_s,
                service_s=service_s,
                batch_size=batch_size,
                request_id=future.request.request_id,
                routed_method=future.routed_method,
                staleness_s=staleness_s,
                applied_seq=applied_seq,
            )
        )

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------

    def _pop_followers(
        self, future: ServiceFuture
    ) -> tuple[ServiceFuture, ...]:
        """Detach the duplicates riding on ``future`` as it settles.

        Setting ``followers`` to None marks the lead settled: identical
        requests submitted afterwards hit the memo (populated before
        this pop on the ok path) or become a fresh in-flight lead.
        """
        if future.followers is None:
            return ()
        with self._inflight_lock:
            followers = future.followers
            future.followers = None
            if followers is None:
                return ()
            if self._inflight.get(future.result_key) is future:
                del self._inflight[future.result_key]
        return tuple(followers)

    def _requeue_followers(
        self, future: ServiceFuture, reason: str
    ) -> None:
        """Re-submit a settling lead's followers for their own attempt.

        A degraded or shed lead answered from the ladder because of
        *its* deadline (or an overload instant); its followers may have
        looser deadlines — or none — so they get queued on their own
        merits rather than inheriting the degraded answer.  When the
        queue refuses (closed or still full) they are shed with the
        lead's reason.
        """
        for follower in self._pop_followers(future):
            if not self._queue.put(follower):
                self._count("service.shed")
                self._resolve_shed(follower, reason=reason)

    def _breaker(self, method: str) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(method)
            if breaker is None:
                breaker = self._breakers[method] = CircuitBreaker(
                    threshold=self._breaker_threshold,
                    cooloff_s=self._breaker_cooloff_s,
                    clock=self._clock,
                )
            return breaker

    def _memo_get(self, key: Any) -> Estimate | None:
        memo = self._memo
        return memo.peek(key) if memo is not None else None

    def _memo_put(self, key: Any, estimate: Estimate) -> None:
        memo = self._memo
        if memo is not None:
            memo.put(key, estimate)

    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)
        if _obs.enabled():
            _obs.record_service(counters={name: amount})

    def _observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)
        if _obs.enabled():
            _obs.record_service(histograms={name: value})
