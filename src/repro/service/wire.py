"""Zero-copy binary wire format for service requests and responses.

The JSON request form ships operand arrays as number lists — decode
rebuilds each array element by element, which dominates service latency
for large operands.  The binary format here ships the operand arenas as
raw array frames instead:

``````
offset 0   magic  b"RPRW"
offset 4   u8     wire version (1)
offset 5   u32le  header length H
offset 9   utf-8  JSON header (H bytes)
align 64   frames: raw little-endian array bytes, each 64-byte aligned
``````

The JSON header carries everything *about* the payload — method,
config, workspace, request id, and per-operand field tables in the
:meth:`repro.shard.arena.ShardArena.manifest` style (field name →
frame, frame → dtype/shape/offset) — while the arrays themselves are
appended verbatim.  Decoding is :func:`np.frombuffer` per frame: no
parsing, no copy — the resulting ``NodeSet`` views alias the payload
buffer, exactly like a shard worker attaching a shared-memory arena
(the sorted-end frame is shipped too, so the receiver never re-sorts).

JSON remains the compatibility default: :func:`decode_request` sniffs
the payload (magic bytes → binary, else JSON) so a service endpoint
accepts both on one code path, and :func:`negotiate_format` picks the
best format both sides accept, preferring binary.  Both formats
round-trip every :class:`EstimateRequest` and :class:`EstimateResponse`
exactly — the qa wire oracle asserts it.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.errors import ServiceError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.kernels.arena import OperandArena, operand_arena
from repro.service.request import EstimateRequest, EstimateResponse

MAGIC = b"RPRW"
WIRE_VERSION = 1

FORMAT_BINARY = "binary"
FORMAT_JSON = "json"

#: Formats this codec can produce and parse, in preference order.
KNOWN_FORMATS = (FORMAT_BINARY, FORMAT_JSON)

_ALIGNMENT = 64
_HEADER_FIXED = len(MAGIC) + 1 + 4  # magic + version byte + u32 length


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) & ~(_ALIGNMENT - 1)


def negotiate_format(accepted: Iterable[str] | None) -> str:
    """The preferred wire format both sides speak.

    ``accepted`` is the peer's accept list (e.g. from a request header);
    ``None`` or an empty list means the peer stated no preference and
    gets the JSON compatibility default.  Unknown entries are ignored;
    an accept list with no known entry raises :class:`ServiceError`.
    """
    if accepted is None:
        return FORMAT_JSON
    offered = [item for item in accepted if item in KNOWN_FORMATS]
    if not offered and list(accepted):
        raise ServiceError(
            f"no mutually supported wire format in {list(accepted)!r} "
            f"(supported: {KNOWN_FORMATS})"
        )
    if not offered:
        return FORMAT_JSON
    return FORMAT_BINARY if FORMAT_BINARY in offered else FORMAT_JSON


def sniff_format(payload: bytes | bytearray | memoryview) -> str:
    """Which wire format ``payload`` is in (by leading magic bytes)."""
    head = bytes(memoryview(payload)[: len(MAGIC)])
    return FORMAT_BINARY if head == MAGIC else FORMAT_JSON


# ----------------------------------------------------------------------
# Header building blocks
# ----------------------------------------------------------------------


def _request_meta(request: EstimateRequest) -> dict[str, Any]:
    """The request's scalar fields, JSON-ready."""
    try:
        config = json.loads(json.dumps(request.config))
    except (TypeError, ValueError) as error:
        raise ServiceError(
            f"request config is not wire-serializable: {error}"
        ) from error
    return {
        "method": request.method,
        "workspace": (
            [int(request.workspace.lo), int(request.workspace.hi)]
            if request.workspace is not None
            else None
        ),
        "config": config,
        "deadline_s": request.deadline_s,
        "max_staleness_s": request.max_staleness_s,
        "request_id": request.request_id,
    }


def _request_from_meta(
    meta: dict[str, Any], ancestors: NodeSet, descendants: NodeSet
) -> EstimateRequest:
    workspace = meta.get("workspace")
    return EstimateRequest(
        ancestors=ancestors,
        descendants=descendants,
        method=meta["method"],
        workspace=(
            Workspace(int(workspace[0]), int(workspace[1]))
            if workspace is not None
            else None
        ),
        config=dict(meta.get("config") or {}),
        deadline_s=meta.get("deadline_s"),
        # Older peers predate bounded staleness; absent means no bound.
        max_staleness_s=meta.get("max_staleness_s"),
        request_id=meta.get("request_id"),
    )


def _response_to_dict(response: EstimateResponse) -> dict[str, Any]:
    return response.to_dict()


def _response_from_dict(payload: dict[str, Any]) -> EstimateResponse:
    if payload.get("schema_version") != 1:
        raise ServiceError(
            f"unsupported response schema_version "
            f"{payload.get('schema_version')!r}"
        )
    return EstimateResponse(
        estimate=Estimate.from_dict(payload["estimate"]),
        status=str(payload["status"]),
        ladder_level=int(payload["ladder_level"]),
        ladder_name=str(payload["ladder_name"]),
        deadline_missed=bool(payload["deadline_missed"]),
        degraded_reason=payload.get("degraded_reason"),
        wait_s=float(payload["wait_s"]),
        service_s=float(payload["service_s"]),
        batch_size=int(payload["batch_size"]),
        request_id=str(payload["request_id"]),
        # Older peers predate routing; absent means "not routed".
        routed_method=payload.get("routed_method"),
        # Older peers predate live workspaces; absent means "not live".
        staleness_s=payload.get("staleness_s"),
        applied_seq=payload.get("applied_seq"),
    )


# ----------------------------------------------------------------------
# Binary envelope
# ----------------------------------------------------------------------


def _pack(header: dict[str, Any], frames: Sequence[np.ndarray]) -> bytes:
    """Assemble magic + version + JSON header + aligned raw frames.

    Frame offsets (relative to the aligned frame base) are appended to
    the header as it is packed, so callers list arrays and nothing else.
    """
    frame_meta = []
    offset = 0
    for array in frames:
        offset = _align(offset)
        frame_meta.append(
            {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    header = dict(header)
    header["frames"] = frame_meta
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    base = _align(_HEADER_FIXED + len(header_bytes))
    payload = bytearray(base + offset)
    payload[: len(MAGIC)] = MAGIC
    payload[len(MAGIC)] = WIRE_VERSION
    payload[len(MAGIC) + 1 : _HEADER_FIXED] = len(header_bytes).to_bytes(
        4, "little"
    )
    payload[_HEADER_FIXED : _HEADER_FIXED + len(header_bytes)] = header_bytes
    for meta, array in zip(frame_meta, frames):
        start = base + meta["offset"]
        payload[start : start + array.nbytes] = np.ascontiguousarray(
            array
        ).tobytes()
    return bytes(payload)


def _unpack(
    payload: bytes | bytearray | memoryview,
) -> tuple[dict[str, Any], list[np.ndarray]]:
    """Parse the envelope; frames are zero-copy views into ``payload``."""
    view = memoryview(payload)
    if bytes(view[: len(MAGIC)]) != MAGIC:
        raise ServiceError("not a binary wire payload (bad magic)")
    version = view[len(MAGIC)]
    if version != WIRE_VERSION:
        raise ServiceError(
            f"unsupported wire version {version} "
            f"(this version reads {WIRE_VERSION})"
        )
    header_len = int.from_bytes(
        bytes(view[len(MAGIC) + 1 : _HEADER_FIXED]), "little"
    )
    try:
        header = json.loads(
            bytes(view[_HEADER_FIXED : _HEADER_FIXED + header_len])
        )
    except ValueError as error:
        raise ServiceError(f"malformed wire header: {error}") from error
    base = _align(_HEADER_FIXED + header_len)
    arrays = []
    for meta in header.get("frames", ()):
        dtype = np.dtype(meta["dtype"])
        shape = tuple(int(n) for n in meta["shape"])
        count = int(np.prod(shape)) if shape else 1
        array = np.frombuffer(
            view, dtype=dtype, count=count, offset=base + int(meta["offset"])
        ).reshape(shape)
        arrays.append(array)
    return header, arrays


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


def _operand_header(
    arena: OperandArena, frames: list[np.ndarray]
) -> dict[str, Any]:
    """One operand's field table; appends its arrays to ``frames``."""
    fields = {}
    for name, array in arena.shard_fields().items():
        fields[name] = len(frames)
        frames.append(array)
    node_set = arena.node_set
    return {
        "name": node_set._name,
        "fingerprint": node_set.fingerprint,
        "length": len(node_set),
        "fields": fields,
    }


def _operand_from_header(
    meta: dict[str, Any], arrays: Sequence[np.ndarray]
) -> NodeSet:
    views = {
        name: arrays[int(index)]
        for name, index in meta["fields"].items()
    }
    arena = OperandArena.from_shard_views(
        views, name=meta.get("name"), fingerprint=meta.get("fingerprint")
    )
    return arena.node_set


def encode_request(
    request: EstimateRequest, wire_format: str = FORMAT_BINARY
) -> bytes:
    """Serialize a request in ``wire_format`` (binary by default)."""
    if wire_format == FORMAT_JSON:
        return encode_request_json(request)
    if wire_format != FORMAT_BINARY:
        raise ServiceError(f"unknown wire format {wire_format!r}")
    frames: list[np.ndarray] = []
    header = {
        "kind": "estimate_request",
        "request": _request_meta(request),
        "operands": {
            "ancestors": _operand_header(
                operand_arena(request.ancestors), frames
            ),
            "descendants": _operand_header(
                operand_arena(request.descendants), frames
            ),
        },
    }
    return _pack(header, frames)


def encode_request_json(request: EstimateRequest) -> bytes:
    """The JSON compatibility form: operand arrays as number lists."""
    document = {
        "kind": "estimate_request",
        "schema_version": WIRE_VERSION,
        "request": _request_meta(request),
        "operands": {
            role: {
                "name": operand._name,
                "fingerprint": operand.fingerprint,
                "starts": operand.starts.tolist(),
                "ends": operand.ends.tolist(),
            }
            for role, operand in (
                ("ancestors", request.ancestors),
                ("descendants", request.descendants),
            )
        },
    }
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def decode_request(
    payload: bytes | bytearray | memoryview,
) -> tuple[EstimateRequest, str]:
    """Parse a request payload in either format.

    Returns ``(request, format)`` — the detected format lets an endpoint
    answer in kind.  Binary operand arrays are zero-copy views into
    ``payload``; keep the buffer alive as long as the request.
    """
    detected = sniff_format(payload)
    if detected == FORMAT_BINARY:
        header, arrays = _unpack(payload)
        if header.get("kind") != "estimate_request":
            raise ServiceError(
                f"expected an estimate_request payload, "
                f"got {header.get('kind')!r}"
            )
        operands = header["operands"]
        ancestors = _operand_from_header(operands["ancestors"], arrays)
        descendants = _operand_from_header(operands["descendants"], arrays)
        return _request_from_meta(header["request"], ancestors, descendants), (
            FORMAT_BINARY
        )
    try:
        document = json.loads(bytes(memoryview(payload)))
    except ValueError as error:
        raise ServiceError(f"malformed JSON request: {error}") from error
    if document.get("kind") != "estimate_request":
        raise ServiceError(
            f"expected an estimate_request payload, "
            f"got {document.get('kind')!r}"
        )
    operands = {}
    for role in ("ancestors", "descendants"):
        meta = document["operands"][role]
        operands[role] = NodeSet.from_arrays(
            np.asarray(meta["starts"], dtype=np.int64),
            np.asarray(meta["ends"], dtype=np.int64),
            name=meta.get("name"),
            fingerprint=meta.get("fingerprint"),
        )
    return (
        _request_from_meta(
            document["request"], operands["ancestors"], operands["descendants"]
        ),
        FORMAT_JSON,
    )


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


def encode_response(
    response: EstimateResponse, wire_format: str = FORMAT_BINARY
) -> bytes:
    """Serialize a response in ``wire_format``.

    Responses carry no operand arrays, so the binary form is the same
    JSON document inside the framed envelope — the caller still gets a
    single self-describing format for both directions.
    """
    if wire_format == FORMAT_JSON:
        document = {
            "kind": "estimate_response",
            "schema_version": WIRE_VERSION,
            "response": _response_to_dict(response),
        }
        return json.dumps(document, separators=(",", ":")).encode("utf-8")
    if wire_format != FORMAT_BINARY:
        raise ServiceError(f"unknown wire format {wire_format!r}")
    header = {
        "kind": "estimate_response",
        "response": _response_to_dict(response),
    }
    return _pack(header, [])


def decode_response(
    payload: bytes | bytearray | memoryview,
) -> EstimateResponse:
    """Parse a response payload in either format."""
    if sniff_format(payload) == FORMAT_BINARY:
        header, __ = _unpack(payload)
        document = header
    else:
        try:
            document = json.loads(bytes(memoryview(payload)))
        except ValueError as error:
            raise ServiceError(
                f"malformed JSON response: {error}"
            ) from error
    if document.get("kind") != "estimate_response":
        raise ServiceError(
            f"expected an estimate_response payload, "
            f"got {document.get('kind')!r}"
        )
    return _response_from_dict(document["response"])
