"""Bounded admission queue with micro-batch coalescing.

The service's workers do not pop requests one at a time: they take the
oldest waiting request plus every *compatible* request queued behind it
(same :meth:`~repro.service.request.EstimateRequest.batch_signature`,
up to the batch cap) in one draw, so a burst of identically shaped
requests — the optimizer re-costing one join under several
configurations, a sweep re-asking the same query — executes as a single
``estimate_across`` kernel pass instead of N sequential calls.

Requests are bucketed by signature at admission (the signature is
computed once per request, by the submitting thread), so a draw is
O(batch): pop the front of the oldest bucket.  Bucket order is
first-pending-member order — the batch is always anchored at a group
whose head has waited longest, and requests within a group leave in
arrival order, so coalescing never starves anyone.

The queue is bounded: :meth:`put` refuses (returns False) rather than
blocks when full, which is the engine's load-shedding signal — the
caller answers the request inline from the bottom ladder rung instead
of letting queue wait times grow without bound.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Sequence

from repro.service.request import ServiceFuture


class RequestQueue:
    """Bounded, signature-bucketed FIFO of :class:`ServiceFuture`."""

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be > 0, got {maxsize}")
        self.maxsize = maxsize
        self._groups: OrderedDict[object, deque[ServiceFuture]] = (
            OrderedDict()
        )
        self._count = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return self._count

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, future: ServiceFuture) -> bool:
        """Admit a request; False when the queue is full or closed."""
        with self._not_empty:
            if self._closed or self._count >= self.maxsize:
                return False
            group = self._groups.get(future.signature)
            if group is None:
                group = self._groups[future.signature] = deque()
            group.append(future)
            self._count += 1
            self._not_empty.notify()
            return True

    def put_many(self, futures: Sequence[ServiceFuture]) -> int:
        """Admit a burst under one lock; returns how many were admitted.

        Admission stops at capacity (or a closed queue) and the count of
        admitted futures — a prefix of ``futures`` — is returned, so the
        caller can drain and retry the rest instead of shedding them.
        Bulk admission is what lets a single-client burst coalesce: every
        compatible request is already bucketed when the first
        :meth:`take_batch` runs, instead of racing the drain one
        admission at a time.
        """
        with self._not_empty:
            if self._closed:
                return 0
            admitted = 0
            for future in futures:
                if self._count >= self.maxsize:
                    break
                group = self._groups.get(future.signature)
                if group is None:
                    group = self._groups[future.signature] = deque()
                group.append(future)
                self._count += 1
                admitted += 1
            if admitted:
                self._not_empty.notify(admitted)
            return admitted

    def take_batch(
        self, max_batch: int, timeout: float | None = None
    ) -> list[ServiceFuture]:
        """Pop the oldest pending group's head plus compatible followers.

        Blocks until a request arrives, the queue closes, or ``timeout``
        elapses; an empty list means "nothing to do" (timeout, or closed
        and drained).  The returned batch shares one
        ``batch_signature`` and has at most ``max_batch`` members, in
        arrival order.
        """
        with self._not_empty:
            while not self._count:
                if self._closed:
                    return []
                if not self._not_empty.wait(timeout):
                    return []
            signature, group = next(iter(self._groups.items()))
            take = min(max_batch, len(group))
            batch = [group.popleft() for _ in range(take)]
            self._count -= take
            if not group:
                del self._groups[signature]
            return batch

    def close(self) -> None:
        """Stop admitting; wake every blocked :meth:`take_batch`."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain(self) -> list[ServiceFuture]:
        """Remove and return everything still queued (for shutdown)."""
        with self._lock:
            items = [
                future
                for group in self._groups.values()
                for future in group
            ]
            self._groups.clear()
            self._count = 0
            return items
