"""Service benchmark: the optimizer-trace workload behind BENCH_service.

The workload models what the paper's Section 6 serving scenario actually
looks like from inside a query optimizer: one optimization pass costs
many candidate plans, and the same containment join shows up in many of
them — so the estimation front-end sees the Figure 8 query set (11 XMARK
queries × 6 sample counts) with each configuration re-asked several
times under a fixed per-configuration seed.  Three phases measure the
service against that trace:

``throughput``
    The full trace, sequentially through :func:`repro.api.estimate` and
    then through a shared :class:`~repro.service.EstimationService`.
    Non-degraded service responses are identity-gated against the
    sequential values (same seeds → bit-equal estimates), and the
    headline ``workload_speedup`` is gated in CI.

``batching``
    The honest decomposition: the same configurations re-asked with
    *fresh* seeds per repeat, so result memoization cannot help and the
    speedup isolates micro-batching + shared caches.  Reported, not
    gated — it bounds what the service does for never-repeating traffic.

``sharding``
    The fresh-seed trace again, through a single-process service and a
    ``processes=K`` service whose batches scatter over the shared-memory
    worker pool (:mod:`repro.shard`).  Values are identity-gated against
    the single-process run (contiguous chunking + in-order gather cannot
    perturb any seeded stream) and the phase reports the pool's scatter/
    fallback counters plus any shared-memory segments left behind after
    both services close — which must be none.  The speedup is gated in
    CI on multi-core runners; ``cpu_count`` is recorded so single-core
    hosts can waive the gate honestly.

``deadline`` / ``stress``
    The trace re-run with generous then hostile per-request deadlines:
    the generous run gates the deadline-miss rate and p99 latency; the
    hostile run checks the degradation ladder — every request still gets
    an estimate, degraded responses are flagged with their ladder rung.

``wire``
    The serialization layer (:mod:`repro.service.wire`): one round of
    distinct trace requests encoded and decoded in the JSON
    compatibility form and in the zero-copy binary form.  Both sides
    are identity-gated (the binary round-trip must reproduce every
    operand array exactly, and one seeded request must estimate
    identically through both wire paths); the reported encode/decode
    speedups are the binary format's reason to exist.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any

from repro import api
from repro.datasets.workloads import ALL_WORKLOADS
from repro.experiments.data import get_dataset
from repro.experiments.sampling import SAMPLE_SWEEP
from repro.service.engine import EstimationService
from repro.service.request import EstimateRequest
from repro.shard.arena import SEGMENT_PREFIX, live_segments

#: Default per-configuration repeat count — how many candidate plans
#: re-cost the same join in one optimization pass.
DEFAULT_REPEATS = 40

#: Timing trials per throughput measurement; the phase reports the best
#: trial of each side (fresh service per trial, so the result memo never
#: warms across trials).  Single-shot wall clocks of a ~100ms workload
#: swing ±40% on shared hardware; best-of-N is what stabilizes the
#: CI-gated speedup.
DEFAULT_TRIALS = 3


def build_trace(
    dataset_name: str = "xmark",
    scale: float = 0.4,
    method: str = "IM",
    sample_counts: tuple[int, ...] = SAMPLE_SWEEP,
    repeats: int = DEFAULT_REPEATS,
    seed: int = 0,
    fresh_seeds: bool = False,
) -> list[EstimateRequest]:
    """The optimizer trace as a list of :class:`EstimateRequest`.

    Every (query, sample count) pair is one configuration with a
    deterministic seed; the trace interleaves configurations round-robin
    — repeat ``r`` of every configuration before repeat ``r+1`` of any —
    the arrival order an optimization loop produces.  With
    ``fresh_seeds=True`` each repeat draws a distinct seed (the
    ``batching`` phase's memoization-proof variant).
    """
    dataset = get_dataset(dataset_name, scale=scale)
    queries = ALL_WORKLOADS[dataset_name]
    requests: list[EstimateRequest] = []
    for query in queries:
        # Touch the content fingerprints during trace construction: they
        # are cached on the NodeSet and shared by every phase, so no
        # timed phase pays the one-time digest as if it were per-request
        # service work (the sequential baseline never needs them).
        ancestors, descendants = query.operands(dataset)
        ancestors.fingerprint
        descendants.fingerprint
    for repeat in range(repeats):
        for qi, query in enumerate(queries):
            ancestors, descendants = query.operands(dataset)
            for si, samples in enumerate(sample_counts):
                config_seed = seed * 1_000_000 + qi * 1_000 + si * 10
                if fresh_seeds:
                    config_seed += repeat + 1
                requests.append(
                    EstimateRequest(
                        ancestors=ancestors,
                        descendants=descendants,
                        method=method,
                        config={
                            "num_samples": samples,
                            "seed": config_seed,
                        },
                        request_id=(
                            f"{query.id}-m{samples}-r{repeat}"
                        ),
                    )
                )
    return requests


def _run_sequential(requests: list[EstimateRequest]) -> tuple[float, list[float]]:
    """The baseline: one :func:`repro.api.estimate` call per request."""
    values: list[float] = []
    start = time.perf_counter()
    for request in requests:
        result = api.estimate(
            request.ancestors,
            request.descendants,
            request.method,
            workspace=request.workspace,
            **request.config,
        )
        values.append(result.value)
    return time.perf_counter() - start, values


def _run_service(
    service: EstimationService,
    requests: list[EstimateRequest],
    deadline_s: float | None = None,
) -> tuple[float, list[Any]]:
    """Submit the whole trace, gather every response, in order."""
    if deadline_s is not None:
        requests = [
            EstimateRequest(
                ancestors=r.ancestors,
                descendants=r.descendants,
                method=r.method,
                workspace=r.workspace,
                config=dict(r.config),
                deadline_s=deadline_s,
                request_id=r.request_id,
            )
            for r in requests
        ]
    start = time.perf_counter()
    responses = service.map(requests, timeout=60.0)
    return time.perf_counter() - start, responses


def _phase_throughput(
    requests: list[EstimateRequest],
    workers: int,
    max_batch: int,
    catalog: Any,
    memoize: bool,
    trials: int = DEFAULT_TRIALS,
) -> dict[str, Any]:
    seq_seconds = float("inf")
    seq_values: list[float] = []
    for __ in range(trials):
        trial_seconds, trial_values = _run_sequential(requests)
        if trial_seconds < seq_seconds:
            seq_seconds = trial_seconds
        seq_values = seq_values or trial_values
    svc_seconds = float("inf")
    responses: list[Any] = []
    stats: dict[str, Any] = {}
    for __ in range(trials):
        # A fresh service per trial: every trial replays the cold trace,
        # so best-of-N never measures a pre-warmed result memo.
        with EstimationService(
            workers=workers,
            max_batch=max_batch,
            catalog=catalog,
            memoize=memoize,
        ) as service:
            trial_seconds, trial_responses = _run_service(
                service, requests
            )
            if trial_seconds < svc_seconds:
                svc_seconds = trial_seconds
                responses = trial_responses
                stats = service.stats()
    mismatches = [
        response.request_id
        for response, expected in zip(responses, seq_values)
        if not response.degraded and response.estimate.value != expected
    ]
    n = len(requests)
    return {
        "requests": n,
        "trials": trials,
        "sequential_seconds": seq_seconds,
        "sequential_rps": n / seq_seconds if seq_seconds else 0.0,
        "service_seconds": svc_seconds,
        "service_rps": n / svc_seconds if svc_seconds else 0.0,
        "speedup": seq_seconds / svc_seconds if svc_seconds else 0.0,
        "identical": not mismatches,
        "mismatches": mismatches[:10],
        "degraded": sum(1 for r in responses if r.degraded),
        "latency_p50_s": stats["latency_p50_s"],
        "latency_p99_s": stats["latency_p99_s"],
        "mean_batch_size": stats["mean_batch_size"],
        "counters": stats["counters"],
        "memo": stats["memo"],
    }


def leaked_shard_segments() -> list[str]:
    """Shared-memory segments still alive: registry plus ``/dev/shm``.

    The registry side catches arenas this process created and never
    unlinked; the ``/dev/shm`` scan catches anything that outlived its
    creator entirely (the failure mode a crashed owner would leave).
    """
    leaked = set(live_segments())
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        leaked.update(
            p.name
            for p in shm_dir.glob(f"{SEGMENT_PREFIX}*")
        )
    return sorted(leaked)


def _phase_sharding(
    requests: list[EstimateRequest],
    processes: int,
    workers: int,
    max_batch: int,
    catalog: Any,
    trials: int = DEFAULT_TRIALS,
) -> dict[str, Any]:
    """Scatter/gather over the worker pool versus one process.

    Both sides run the fresh-seed trace (memoization cannot mask
    compute) through otherwise-identical services; only ``processes``
    differs.  Fresh services per trial, best-of-N on each side.
    """
    base_seconds = float("inf")
    base_values: list[float] = []
    for __ in range(trials):
        with EstimationService(
            workers=workers, max_batch=max_batch, catalog=catalog
        ) as service:
            seconds, responses = _run_service(service, requests)
        if seconds < base_seconds:
            base_seconds = seconds
        base_values = base_values or [
            r.estimate.value for r in responses
        ]
    shard_seconds = float("inf")
    shard_responses: list[Any] = []
    pool_stats: dict[str, Any] = {}
    for __ in range(trials):
        with EstimationService(
            workers=workers,
            max_batch=max_batch,
            catalog=catalog,
            processes=processes,
        ) as service:
            seconds, responses = _run_service(service, requests)
            stats = service.stats()
        if seconds < shard_seconds:
            shard_seconds = seconds
            shard_responses = responses
            pool_stats = stats.get("pool") or {}
    mismatches = [
        response.request_id
        for response, expected in zip(shard_responses, base_values)
        if not response.degraded
        and response.estimate.value != expected
    ]
    n = len(requests)
    return {
        "requests": n,
        "trials": trials,
        "processes": processes,
        "cpu_count": os.cpu_count() or 1,
        "baseline_seconds": base_seconds,
        "sharded_seconds": shard_seconds,
        "speedup": (
            base_seconds / shard_seconds if shard_seconds else 0.0
        ),
        "identical": not mismatches,
        "mismatches": mismatches[:10],
        "scatters": int(pool_stats.get("scatters", 0)),
        "fallbacks": int(pool_stats.get("fallbacks", 0)),
        "arena_bytes": int(pool_stats.get("arena_bytes", 0)),
        "leaked_segments": leaked_shard_segments(),
    }


def _phase_deadline(
    requests: list[EstimateRequest],
    deadline_s: float,
    workers: int,
    max_batch: int,
    catalog: Any,
) -> dict[str, Any]:
    with EstimationService(
        workers=workers,
        max_batch=max_batch,
        catalog=catalog,
    ) as service:
        __, responses = _run_service(
            service, requests, deadline_s=deadline_s
        )
        stats = service.stats()
    n = len(responses)
    missed = sum(1 for r in responses if r.deadline_missed)
    degraded = [r for r in responses if r.degraded]
    reasons: dict[str, int] = {}
    levels: dict[str, int] = {}
    for response in degraded:
        reasons[response.degraded_reason] = (
            reasons.get(response.degraded_reason, 0) + 1
        )
        levels[response.ladder_name] = (
            levels.get(response.ladder_name, 0) + 1
        )
    return {
        "requests": n,
        "deadline_s": deadline_s,
        "all_answered": n == len(requests),
        "deadline_misses": missed,
        "deadline_miss_rate": missed / n if n else 0.0,
        "degraded": len(degraded),
        "degraded_flagged": all(
            r.status in ("degraded", "shed") for r in degraded
        ),
        "degraded_reasons": reasons,
        "ladder_levels": levels,
        "latency_p99_s": stats["latency_p99_s"],
    }


def _phase_wire(
    requests: list[EstimateRequest],
    trials: int = DEFAULT_TRIALS,
) -> dict[str, Any]:
    """JSON versus binary wire codec over one round of distinct requests.

    Encode and decode the whole batch in each format, best-of-N; the
    identity gate decodes every binary payload and requires the operand
    arrays, fingerprints and config to match the original request, then
    routes one request through ``estimate_wire`` in both formats and
    requires bit-identical estimates.
    """
    import numpy as np

    from repro.service import wire

    def encode_all(wire_format: str) -> list[bytes]:
        return [
            wire.encode_request(request, wire_format)
            for request in requests
        ]

    def best_of(callable_) -> float:
        best = float("inf")
        for __ in range(trials):
            start = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - start)
        return best

    timings: dict[str, float] = {}
    payloads: dict[str, list[bytes]] = {}
    for wire_format in wire.KNOWN_FORMATS:
        payloads[wire_format] = encode_all(wire_format)
        timings[f"{wire_format}_encode_s"] = best_of(
            lambda wf=wire_format: encode_all(wf)
        )
        timings[f"{wire_format}_decode_s"] = best_of(
            lambda wf=wire_format: [
                wire.decode_request(p) for p in payloads[wf]
            ]
        )

    identical = True
    for request, payload in zip(requests, payloads[wire.FORMAT_BINARY]):
        decoded, __ = wire.decode_request(payload)
        if not (
            np.array_equal(decoded.ancestors.starts, request.ancestors.starts)
            and np.array_equal(decoded.ancestors.ends, request.ancestors.ends)
            and np.array_equal(
                decoded.descendants.starts, request.descendants.starts
            )
            and np.array_equal(
                decoded.descendants.ends, request.descendants.ends
            )
            and decoded.ancestors.fingerprint == request.ancestors.fingerprint
            and decoded.config == request.config
        ):
            identical = False
            break
    if identical:
        answers = []
        for wire_format in wire.KNOWN_FORMATS:
            with EstimationService(workers=0) as service:
                reply = service.estimate_wire(
                    wire.encode_request(requests[0], wire_format)
                )
            response = wire.decode_response(reply)
            answers.append(
                (response.estimate.value, response.estimate.details)
            )
        identical = all(answer == answers[0] for answer in answers)

    json_encode = timings["json_encode_s"]
    json_decode = timings["json_decode_s"]
    binary_encode = timings["binary_encode_s"]
    binary_decode = timings["binary_decode_s"]
    return {
        "requests": len(requests),
        "trials": trials,
        "json_encode_s": json_encode,
        "json_decode_s": json_decode,
        "binary_encode_s": binary_encode,
        "binary_decode_s": binary_decode,
        "json_bytes": sum(len(p) for p in payloads[wire.FORMAT_JSON]),
        "binary_bytes": sum(len(p) for p in payloads[wire.FORMAT_BINARY]),
        "encode_speedup": (
            json_encode / binary_encode if binary_encode > 0 else 0.0
        ),
        "decode_speedup": (
            json_decode / binary_decode if binary_decode > 0 else 0.0
        ),
        "roundtrip_identical": identical,
    }


def run_service_bench(
    dataset_name: str = "xmark",
    scale: float = 0.4,
    method: str = "IM",
    repeats: int = DEFAULT_REPEATS,
    workers: int = 0,
    max_batch: int = 32,
    seed: int = 0,
    deadline_s: float = 0.25,
    stress_deadline_s: float = 0.0002,
    trials: int = DEFAULT_TRIALS,
    processes: int = 2,
) -> dict[str, Any]:
    """Run every phase; returns the ``BENCH_service.json`` payload."""
    dataset = get_dataset(dataset_name, scale=scale)
    catalog = api.build_catalog(dataset.tree, 400)
    trace = build_trace(
        dataset_name,
        scale=scale,
        method=method,
        repeats=repeats,
        seed=seed,
    )
    fresh = build_trace(
        dataset_name,
        scale=scale,
        method=method,
        repeats=repeats,
        seed=seed,
        fresh_seeds=True,
    )
    distinct = len(
        {
            (r.ancestors.fingerprint, tuple(sorted(r.config.items())))
            for r in trace
        }
    )
    report: dict[str, Any] = {
        "bench": "service",
        "dataset": dataset_name,
        "scale": scale,
        "method": method,
        "workers": workers,
        "max_batch": max_batch,
        "repeats": repeats,
        "distinct_configs": distinct,
        "throughput": _phase_throughput(
            trace, workers, max_batch, catalog, memoize=True,
            trials=trials,
        ),
        "batching": _phase_throughput(
            fresh, workers, max_batch, catalog, memoize=True,
            trials=trials,
        ),
        "sharding": _phase_sharding(
            fresh, processes, workers, max_batch, catalog,
            trials=trials,
        ),
        "deadline": _phase_deadline(
            trace, deadline_s, workers, max_batch, catalog
        ),
        "stress": _phase_deadline(
            trace, stress_deadline_s, workers, max_batch, catalog
        ),
        # One round of the trace — every distinct configuration once —
        # is the codec workload; repeating identical payloads would only
        # rescale both sides.
        "wire": _phase_wire(
            trace[: max(1, len(trace) // max(repeats, 1))], trials=trials
        ),
    }
    report["workload_speedup"] = report["throughput"]["speedup"]
    report["batching_speedup"] = report["batching"]["speedup"]
    report["sharding_speedup"] = report["sharding"]["speedup"]
    return report


def render_report(report: dict[str, Any]) -> str:
    """Human-oriented one-screen summary of a bench report."""
    throughput = report["throughput"]
    batching = report["batching"]
    sharding = report["sharding"]
    deadline = report["deadline"]
    stress = report["stress"]
    lines = [
        f"service bench [{report['dataset']} scale={report['scale']} "
        f"{report['method']}] {throughput['requests']} requests, "
        f"{report['distinct_configs']} distinct configs, "
        f"{report['workers']} workers",
        f"  throughput: {throughput['sequential_rps']:.0f} rps sequential "
        f"-> {throughput['service_rps']:.0f} rps service "
        f"({report['workload_speedup']:.1f}x, identical="
        f"{throughput['identical']})",
        f"  batching (fresh seeds): {report['batching_speedup']:.1f}x, "
        f"identical={batching['identical']}",
        f"  sharding processes={sharding['processes']}: "
        f"{sharding['speedup']:.1f}x on {sharding['cpu_count']} cpu(s), "
        f"identical={sharding['identical']}, "
        f"{sharding['scatters']} scatters / "
        f"{sharding['fallbacks']} fallbacks, "
        f"leaked segments: {len(sharding['leaked_segments'])}",
        f"  deadline {deadline['deadline_s'] * 1000:.1f}ms: "
        f"miss rate {deadline['deadline_miss_rate']:.1%}, "
        f"p99 {deadline['latency_p99_s'] * 1000:.2f}ms, "
        f"{deadline['degraded']} degraded",
        f"  stress {stress['deadline_s'] * 1000:.2f}ms: "
        f"{stress['degraded']}/{stress['requests']} degraded "
        f"(all answered={stress['all_answered']}, "
        f"levels={stress['ladder_levels']})",
    ]
    wire = report.get("wire")
    if wire is not None:
        lines.append(
            f"  wire ({wire['requests']} requests): encode "
            f"{wire['json_encode_s'] * 1000:.1f}ms json -> "
            f"{wire['binary_encode_s'] * 1000:.1f}ms binary "
            f"({wire['encode_speedup']:.1f}x), decode "
            f"{wire['json_decode_s'] * 1000:.1f}ms -> "
            f"{wire['binary_decode_s'] * 1000:.1f}ms "
            f"({wire['decode_speedup']:.1f}x), "
            f"identical={wire['roundtrip_identical']}"
        )
    return "\n".join(lines)
