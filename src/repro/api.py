"""The stable public estimation API.

Everything a caller (an optimizer, a benchmark harness, a notebook)
needs without touching package internals:

* :func:`estimate` — one containment join size estimate by method name;
* :func:`build_catalog` — budgeted per-tag synopses for plan-time
  estimation over a whole document;
* :func:`serve` — a concurrent micro-batching estimation front-end
  (:class:`EstimationService`) with per-request deadlines, graceful
  degradation and load shedding, for callers that issue many requests
  (an optimizer costing candidate plans) rather than one;
* :func:`optimize` — join-order selection for a containment-join chain,
  driven by any :class:`CardinalityGenerator` (estimator-backed,
  service-backed, exact-oracle, or the pessimistic upper bound), with
  :func:`resolve_generator` / :func:`available_generators` mirroring
  the estimator registry's name resolution;
* the closed loop — :class:`FeedbackStore` / :func:`record_feedback` /
  :func:`use_feedback` accumulate what the serving layer answered and
  how wrong it was, a :class:`CorrectionModel` learns per-query-class
  multipliers from that history, and a :class:`Router` (resolved by
  name through :func:`resolve_router` / :func:`available_routers`)
  picks the answering method per query class when passed to
  :func:`serve`;
* the streaming layer — :class:`LiveWorkspace` maintains one tenant's
  summaries/index/sample incrementally under a :class:`MutationFeed`
  of insert/delete/update batches, :class:`CatalogStore` keeps many
  tenants with LRU disk residency, and either plugs into
  :func:`serve` via ``live=`` so requests carry a per-request
  ``max_staleness_s`` bound;
* subsystem resolution — :func:`resolve_module` /
  :func:`available_modules` map a subsystem name or alias
  ("maintenance", "incremental", "pager", "churn", ...) onto the
  package that implements it, with the same nearest-match "did you
  mean" errors the estimator registry raises;
* the re-exported types: :class:`Estimate`, :class:`Estimator`,
  :class:`NodeSet`, :class:`Workspace`, :class:`SpaceBudget`,
  :class:`SummaryCache`, :class:`IndexCache` (with
  :func:`use_index_cache` for ambient installation around repeated
  sampling calls), :class:`DiskNodeSet` / :func:`write_node_set` for
  the paged on-disk representation, the incremental maintenance
  structures (:class:`DynamicTTree`, :class:`IncrementalPLHistogram`,
  :class:`IncrementalCellHistogram`, :class:`ReservoirSample`), plus
  :func:`make_estimator` / :func:`available_estimators` for direct
  construction.

This module (and the same names re-exported from :mod:`repro`) is the
documented stable surface — see ``docs/API.md`` for the stability
policy.  Anything imported from deeper ``repro.*`` paths is internal
and may change between versions.

``estimate`` is a thin veneer: it resolves the method name through the
registry (case-insensitive, aliases allowed), constructs the estimator
from ``**config``, and runs it — optionally under an ambient
:class:`~repro.perf.SummaryCache` so repeated calls share built
summaries.  It is guaranteed to return exactly what direct construction
would::

    repro.api.estimate(a, d, method="pl-histogram", num_buckets=20)
    == make_estimator("PL", num_buckets=20).estimate(a, d)
"""

from __future__ import annotations

import importlib
from types import ModuleType
from typing import Any

from repro.core.budget import SpaceBudget
from repro.core.errors import UnknownModuleError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike
from repro.core.workspace import Workspace
from repro.catalog.catalog import CatalogMethod, StatisticsCatalog
from repro.estimators.base import Estimate, Estimator
from repro.estimators.registry import (
    available_estimators,
    canonical_name,
    make_estimator,
    nearest_names,
)
from repro.maintenance import (
    DynamicTTree,
    IncrementalCellHistogram,
    IncrementalPLHistogram,
    ReservoirSample,
)
from repro.feedback import (
    CorrectionModel,
    FeedbackRecord,
    FeedbackStore,
    record_feedback,
    use_feedback,
)
from repro.optimizer.generator import (
    CardinalityGenerator,
    available_generators,
    resolve_generator,
)
from repro.router import (
    Router,
    available_routers,
    resolve_router,
)
from repro.kernels.backend import (
    available_backends,
    kernel_backend,
    set_kernel_backend,
    use_kernel_backend,
)
from repro.optimizer.planner import JoinPlan, plan_cost
from repro.optimizer.planner import optimize as _optimize_impl
from repro.perf.cache import SummaryCache, use_cache
from repro.perf.index_cache import IndexCache, use_index_cache
from repro.service.engine import EstimationService
from repro.service.request import EstimateRequest, EstimateResponse
from repro.storage.element_file import DiskNodeSet, write_node_set
from repro.stream import (
    CatalogStore,
    LiveWorkspace,
    Mutation,
    MutationBatch,
    MutationFeed,
)
from repro.xmltree.tree import DataTree

__all__ = [
    "CardinalityGenerator",
    "CatalogStore",
    "CorrectionModel",
    "DiskNodeSet",
    "DynamicTTree",
    "Estimate",
    "EstimateRequest",
    "EstimateResponse",
    "EstimationService",
    "Estimator",
    "FeedbackRecord",
    "FeedbackStore",
    "IncrementalCellHistogram",
    "IncrementalPLHistogram",
    "IndexCache",
    "JoinPlan",
    "LiveWorkspace",
    "Mutation",
    "MutationBatch",
    "MutationFeed",
    "NodeSet",
    "ReservoirSample",
    "Router",
    "SpaceBudget",
    "StatisticsCatalog",
    "SummaryCache",
    "Workspace",
    "available_backends",
    "available_estimators",
    "available_generators",
    "available_modules",
    "available_routers",
    "build_catalog",
    "canonical_name",
    "estimate",
    "kernel_backend",
    "make_estimator",
    "optimize",
    "plan_cost",
    "record_feedback",
    "resolve_generator",
    "resolve_module",
    "resolve_router",
    "serve",
    "set_kernel_backend",
    "use_feedback",
    "use_index_cache",
    "use_kernel_backend",
    "write_node_set",
]


#: Documented subsystems, canonical name -> import path.  Kept in sync
#: with the package layout; ``resolve_module`` is the supported way to
#: reach a subsystem from its workload-level name.
_MODULES: dict[str, str] = {
    "API": "repro.api",
    "CATALOG": "repro.catalog",
    "CORE": "repro.core",
    "DATASETS": "repro.datasets",
    "ESTIMATORS": "repro.estimators",
    "EXPERIMENTS": "repro.experiments",
    "FEEDBACK": "repro.feedback",
    "INDEX": "repro.index",
    "JOIN": "repro.join",
    "KERNELS": "repro.kernels",
    "MAINTENANCE": "repro.maintenance",
    "MODELS": "repro.models",
    "OBS": "repro.obs",
    "OPTIMIZER": "repro.optimizer",
    "PERF": "repro.perf",
    "QA": "repro.qa",
    "ROUTER": "repro.router",
    "SERVICE": "repro.service",
    "SHARD": "repro.shard",
    "STORAGE": "repro.storage",
    "STREAM": "repro.stream",
    "XMLTREE": "repro.xmltree",
}

#: Workload-level synonyms accepted by :func:`resolve_module`
#: (uppercased, same shape as the estimator alias table).
_MODULE_ALIASES: dict[str, str] = {
    "BANDIT": "ROUTER",
    "CACHE": "PERF",
    "CACHES": "PERF",
    "CHURN": "STREAM",
    "DATA": "DATASETS",
    "DISK": "STORAGE",
    "INCREMENTAL": "MAINTENANCE",
    "INDEXES": "INDEX",
    "LIVE": "STREAM",
    "ORACLES": "QA",
    "PAGER": "STORAGE",
    "PAGES": "STORAGE",
    "PLANNER": "OPTIMIZER",
    "RESERVOIR": "MAINTENANCE",
    "SERVING": "SERVICE",
    "STREAMING": "STREAM",
    "TELEMETRY": "OBS",
    "TREE": "XMLTREE",
    "TTREE": "MAINTENANCE",
}


def available_modules() -> list[str]:
    """Canonical subsystem names accepted by :func:`resolve_module`."""
    return sorted(m.lower() for m in _MODULES)


def resolve_module(name: str) -> ModuleType:
    """Import and return the subsystem package named ``name``.

    Names are case-insensitive and the alias table maps workload-level
    synonyms onto subsystems ("incremental" and "reservoir" resolve to
    :mod:`repro.maintenance`, "pager" and "disk" to
    :mod:`repro.storage`, "live" / "churn" / "streaming" to
    :mod:`repro.stream`).  Unknown names raise
    :class:`~repro.core.errors.UnknownModuleError` listing the
    available subsystems and the closest candidates, exactly like the
    estimator registry's name resolution.
    """
    key = name.strip().upper()
    key = _MODULE_ALIASES.get(key, key)
    if key in _MODULES:
        return importlib.import_module(_MODULES[key])
    candidates = tuple(
        c.lower() for c in nearest_names(name, _MODULES, _MODULE_ALIASES)
    )
    if not candidates:
        hint = ""
    elif len(candidates) == 1:
        hint = f"; did you mean {candidates[0]!r}?"
    else:
        listed = ", ".join(repr(c) for c in candidates[:-1])
        hint = f"; did you mean {listed} or {candidates[-1]!r}?"
    raise UnknownModuleError(
        name,
        candidates,
        f"unknown module {name!r}; available: "
        f"{', '.join(available_modules())}{hint}",
    )


def estimate(
    ancestors: NodeSet,
    descendants: NodeSet,
    method: str = "PL",
    *,
    workspace: Workspace | None = None,
    cache: SummaryCache | None = None,
    **config: Any,
) -> Estimate:
    """Estimate ``|ancestors ⋈ descendants|`` with the named method.

    Args:
        ancestors: the ancestor operand ``A``.
        descendants: the descendant operand ``D``.
        method: a registry name or alias, any case ("PL",
            "pl-histogram", "IM", "im-da", ...); see
            :func:`available_estimators`.
        workspace: the position domain; defaults to the tight span of
            both operands.
        cache: a summary cache installed ambiently for the call, so
            histogram methods reuse summaries across calls that share
            operands.
        **config: estimator constructor arguments (``num_buckets=``,
            ``budget=``, ``num_samples=``, ``seed=``, ...).

    Returns the same :class:`Estimate` that
    ``make_estimator(method, **config).estimate(...)`` would.
    """
    estimator = make_estimator(method, **config)
    if cache is None:
        return estimator.estimate(ancestors, descendants, workspace)
    with use_cache(cache):
        return estimator.estimate(ancestors, descendants, workspace)


def optimize(
    node_sets: Any,
    generator: "CardinalityGenerator | Estimator | str" = "PL",
    *,
    workspace: Workspace | None = None,
    catalog: StatisticsCatalog | None = None,
    **config: Any,
) -> JoinPlan:
    """Pick the cheapest join order for a containment-join chain.

    The facade entry point to the planner: ``node_sets`` is the chain
    ``s_1 // ... // s_k`` (outermost ancestor first, k >= 2) and
    ``generator`` is any accepted estimation source — a
    :class:`CardinalityGenerator`, a bare :class:`Estimator` (wrapped in
    the pairwise adapter), or a name :func:`resolve_generator` accepts::

        repro.optimize(sets, "PL", workspace=ws, num_buckets=20)
        repro.optimize(sets, "exact")        # oracle baseline
        repro.optimize(sets, "pessimistic")  # UES/AGM upper bound

    Unknown names raise
    :class:`~repro.core.errors.UnknownGeneratorError` with the same
    nearest-match candidate lists the estimator registry produces.

    Args:
        node_sets: the chain's node sets, outermost ancestor first.
        generator: estimation source (see above); default "PL".
        workspace: shared position domain (defaults per estimator call).
        catalog: optional :class:`StatisticsCatalog` forwarded to the
            generator's ``setup_for_workload`` hook.
        **config: constructor arguments when ``generator`` is a name.

    Returns:
        the optimal :class:`JoinPlan`; score it with :func:`plan_cost`.
    """
    return _optimize_impl(
        node_sets,
        generator,
        workspace=workspace,
        catalog=catalog,
        **config,
    )


def serve(
    *,
    catalog: StatisticsCatalog | None = None,
    router: "Router | str | None" = None,
    feedback: "FeedbackStore | bool | None" = None,
    correction: CorrectionModel | None = None,
    **options: Any,
) -> EstimationService:
    """Start an :class:`EstimationService` over the estimator registry.

    The service front-ends :func:`estimate` for callers that issue many
    requests: compatible requests coalesce into micro-batches, repeat
    seeded requests are answered from a result memo, and a request with
    a ``deadline_s`` always gets *an* answer — degraded down the
    catalog/bound ladder instead of erroring when the deadline cannot be
    met.  Use it as a context manager::

        with repro.serve(catalog=catalog) as service:
            response = service.estimate(
                a, d, "IM", num_samples=100, seed=7, deadline_s=0.05,
            )
            response.estimate.value   # always present
            response.degraded         # True if the ladder answered

    The closed loop is opt-in: with ``router=`` the service picks the
    answering method per query class (disclosed in
    ``response.routed_method``) and learns from the attached feedback
    store; with all three left at their defaults every request is
    answered by exactly the method it named, bit-identically to
    :func:`estimate`.

    Args:
        catalog: optional :class:`StatisticsCatalog` enabling the
            plan-time ``catalog`` degradation rung (without one the
            ladder falls through to the closed-form bound).
        router: optional :class:`Router` instance or name
            (:func:`available_routers`; e.g. ``"ucb1"``) routing each
            admitted request to its best-known method.
        feedback: optional :class:`FeedbackStore` (``True`` for a fresh
            one) recording every response; created automatically when a
            router is attached.
        correction: optional fitted :class:`CorrectionModel` applied as
            a post-multiplier to full-fidelity answers.
        **options: forwarded to :class:`EstimationService` — ``workers``
            (0 = caller-runs, the embedded-optimizer mode), ``max_batch``,
            ``queue_size``, ``memoize``, breaker tuning, caches.
    """
    return EstimationService(
        catalog=catalog,
        router=router,
        feedback=feedback,
        correction=correction,
        **options,
    )


def build_catalog(
    tree: DataTree | Any,
    budget_per_tag: SpaceBudget | int = 400,
    *,
    method: CatalogMethod = "histogram",
    seed: SeedLike = None,
    tags: list[str] | None = None,
    cache: SummaryCache | None = None,
    num_shards: int = 1,
) -> StatisticsCatalog:
    """Build a per-tag statistics catalog for plan-time estimation.

    Args:
        tree: the document to summarize — a :class:`DataTree` or any
            generated :class:`~repro.datasets.base.Dataset` (its
            ``.tree`` is used).
        budget_per_tag: byte budget per tag; a plain int is wrapped in a
            :class:`SpaceBudget` (default 400, the paper's middle
            budget).
        method: "histogram" (PL statistics, Table 1) or "sample"
            (uniform element sample).
        seed: RNG seed for sample mode.
        tags: restrict the catalog to these tags.
        cache: summary cache consulted for the per-tag builds.
        num_shards: build histogram entries as ``num_shards`` per-shard
            builds merged bucket-wise (see :mod:`repro.shard`); bucket
            counts stay bit-exact versus the unsharded build.

    The result answers ``catalog.estimate_join(a_tag, d_tag)`` with no
    base-data access.
    """
    if not isinstance(tree, DataTree) and hasattr(tree, "tree"):
        tree = tree.tree
    if not isinstance(budget_per_tag, SpaceBudget):
        budget_per_tag = SpaceBudget(int(budget_per_tag))
    return StatisticsCatalog(
        tree,
        budget_per_tag,
        method=method,
        seed=seed,
        tags=tags,
        cache=cache,
        num_shards=num_shards,
    )
