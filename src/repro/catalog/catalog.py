"""Per-tag statistics catalog with budgeted synopses.

For every tag of a document the catalog stores, under a per-tag byte
budget:

* ``method="histogram"`` — the tag's PL statistics in both join roles
  (Table 1), over the document workspace;
* ``method="sample"`` — a uniform element sample (intervals retain both
  endpoints, so the one sample serves both the ancestor and the
  descendant role).

Plan-time estimation then needs *no* access to base data:

* histogram mode runs PL-Hist-Est (Algorithm 1) over the stored bucket
  statistics;
* sample mode runs the two-sample estimator
  (:mod:`repro.estimators.two_sample`) over the stored samples — unbiased,
  with the extra variance that synopsis-only probing costs.

The catalog also reports its total size in bytes under the paper's
accounting (Section 6.2), so budget comparisons stay honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core.budget import (
    BYTES_PER_SAMPLE,
    PL_BYTES_PER_BUCKET,
    SpaceBudget,
)
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.estimators.pl_histogram import (
    PLHistogram,
    PLHistogramEstimator,
    build_ancestor_cached,
    build_descendant_cached,
)
from repro.estimators.two_sample import two_sample_estimate
from repro.perf.cache import SummaryCache, resolve_cache
from repro.shard.merge import merge_pl_histograms
from repro.shard.partition import shard_node_set
from repro.xmltree.tree import DataTree

CatalogMethod = Literal["histogram", "sample"]


@dataclass
class CatalogEntry:
    """The stored synopsis for one tag."""

    tag: str
    cardinality: int
    ancestor_histogram: PLHistogram | None = None
    descendant_histogram: PLHistogram | None = None
    sample: NodeSet | None = None

    def nbytes(self) -> int:
        """Size under the paper's accounting (+8 for the cardinality)."""
        total = 8
        if self.ancestor_histogram is not None:
            total += PL_BYTES_PER_BUCKET * len(self.ancestor_histogram)
        if self.descendant_histogram is not None:
            total += PL_BYTES_PER_BUCKET * len(self.descendant_histogram)
        if self.sample is not None:
            total += 2 * BYTES_PER_SAMPLE * len(self.sample)
        return total


class StatisticsCatalog:
    """Budgeted per-tag synopses for one document.

    Args:
        tree: the document to summarize.
        budget_per_tag: byte budget for each tag's synopsis.
        method: "histogram" (PL statistics) or "sample" (element sample).
        seed: RNG seed for sample mode.
        tags: restrict to these tags (default: every tag in the document).
        cache: summary cache consulted for the per-tag histogram builds,
            so rebuilding a catalog (or building several with overlapping
            tag lists) reuses previously built summaries; defaults to the
            ambient cache installed by :func:`repro.perf.use_cache`.
        num_shards: histogram-mode entries are built as ``num_shards``
            independent per-shard builds merged bucket-wise
            (:mod:`repro.shard`).  Bucket counts match the unsharded
            build bit-exactly; per-bucket ``total_length`` is the same
            float sum re-bracketed at shard seams (1e-12 relative).
            Sample mode ignores sharding — one global draw keeps the
            sample uniform.
    """

    def __init__(
        self,
        tree: DataTree,
        budget_per_tag: SpaceBudget,
        method: CatalogMethod = "histogram",
        seed: SeedLike = None,
        tags: list[str] | None = None,
        cache: SummaryCache | None = None,
        num_shards: int = 1,
    ) -> None:
        if method not in ("histogram", "sample"):
            raise EstimationError(f"unknown catalog method {method!r}")
        if num_shards < 1:
            raise EstimationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.method: CatalogMethod = method
        self.budget_per_tag = budget_per_tag
        self.workspace: Workspace = tree.workspace()
        self.cache = cache
        self.num_shards = num_shards
        rng = make_rng(seed)
        self._entries: dict[str, CatalogEntry] = {}
        for tag in tags if tags is not None else sorted(tree.tags()):
            node_set = tree.node_set(tag)
            if len(node_set) == 0:
                continue
            self._entries[tag] = self._build_entry(node_set, rng)

    def _build_entry(
        self, node_set: NodeSet, rng: np.random.Generator
    ) -> CatalogEntry:
        if self.method == "histogram":
            # The budget pays for both roles' bucket arrays.
            buckets = max(1, self.budget_per_tag.pl_buckets // 2)
            cache = resolve_cache(self.cache)
            return CatalogEntry(
                tag=node_set.name,
                cardinality=len(node_set),
                ancestor_histogram=self._build_histogram(
                    node_set, buckets, build_ancestor_cached, cache
                ),
                descendant_histogram=self._build_histogram(
                    node_set, buckets, build_descendant_cached, cache
                ),
            )
        # Sample mode: one element sample serves both roles; an interval
        # entry costs two position slots.
        size = min(
            max(1, self.budget_per_tag.samples // 2), len(node_set)
        )
        sample = NodeSet(node_set.sample(size, rng), validate=False)
        return CatalogEntry(
            tag=node_set.name,
            cardinality=len(node_set),
            sample=sample,
        )

    def _build_histogram(
        self,
        node_set: NodeSet,
        buckets: int,
        builder,
        cache: SummaryCache | None,
    ) -> PLHistogram:
        """One role's histogram, sharded when ``num_shards > 1``.

        Every shard is built against the global workspace, so bucket
        edges agree and :func:`merge_pl_histograms` adds bucket-wise.
        Empty shards (cardinality below ``num_shards``) contribute
        nothing and are skipped.
        """
        if self.num_shards == 1:
            return builder(node_set, self.workspace, buckets, cache=cache)
        shards = shard_node_set(node_set, self.num_shards, cache=cache)
        return merge_pl_histograms(
            [
                builder(shard, self.workspace, buckets, cache=cache)
                for shard in shards
                if len(shard)
            ]
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def tags(self) -> list[str]:
        return sorted(self._entries)

    def entry(self, tag: str) -> CatalogEntry:
        try:
            return self._entries[tag]
        except KeyError:
            raise EstimationError(
                f"tag {tag!r} not in catalog (known: {len(self._entries)})"
            ) from None

    def cardinality(self, tag: str) -> int:
        """Stored exact cardinality of a tag (always kept, 8 bytes)."""
        return self.entry(tag).cardinality

    def nbytes(self) -> int:
        """Total catalog size under the paper's space accounting."""
        return sum(entry.nbytes() for entry in self._entries.values())

    def __contains__(self, tag: str) -> bool:
        return tag in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Plan-time estimation (no base-data access)
    # ------------------------------------------------------------------

    def estimate_join(self, ancestor_tag: str, descendant_tag: str) -> Estimate:
        """Containment join size between two catalogued tags."""
        ancestor = self.entry(ancestor_tag)
        descendant = self.entry(descendant_tag)
        if self.method == "histogram":
            estimator = PLHistogramEstimator(
                num_buckets=len(ancestor.ancestor_histogram)
            )
            result = estimator.estimate_from_histograms(
                ancestor.ancestor_histogram,
                descendant.descendant_histogram,
            )
            return Estimate(
                result.value,
                "CATALOG-PL",
                mre=result.mre,
                details=result.details,
            )
        value = two_sample_estimate(
            ancestor.sample,
            ancestor.cardinality,
            descendant.sample.starts,
            descendant.cardinality,
        )
        return Estimate(
            value,
            "CATALOG-2S",
            details={
                "ancestor_samples": len(ancestor.sample),
                "descendant_samples": len(descendant.sample),
            },
        )
