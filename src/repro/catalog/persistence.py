"""Persist statistics catalogs to JSON.

Real optimizers keep their statistics in durable catalogs built at load
time.  This module serializes a :class:`StatisticsCatalog` — either mode
— to a single JSON document and restores it without access to the
original tree, preserving every estimate bit-for-bit (the tests check).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.catalog.catalog import CatalogEntry, StatisticsCatalog
from repro.core.budget import SpaceBudget
from repro.core.element import Element
from repro.core.errors import ReproError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.pl_histogram import PLBucket, PLHistogram

_FORMAT_VERSION = 1


def _histogram_to_json(histogram: PLHistogram | None):
    if histogram is None:
        return None
    return {
        "role": histogram.role,
        "buckets": [
            [b.index, b.wss, b.wse, b.n, b.total_length]
            for b in histogram.buckets
        ],
    }


def _histogram_from_json(payload) -> PLHistogram | None:
    if payload is None:
        return None
    buckets = [
        PLBucket(int(i), float(wss), float(wse), int(n), float(length))
        for i, wss, wse, n, length in payload["buckets"]
    ]
    return PLHistogram(buckets, payload["role"])


def _sample_to_json(sample: NodeSet | None):
    if sample is None:
        return None
    return [[e.tag, e.start, e.end, e.level] for e in sample]


def _sample_from_json(payload) -> NodeSet | None:
    if payload is None:
        return None
    return NodeSet(
        (Element(tag, int(s), int(e), int(level))
         for tag, s, e, level in payload),
        validate=False,
    )


def save_catalog(catalog: StatisticsCatalog, path: str | Path) -> Path:
    """Write ``catalog`` to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format_version": _FORMAT_VERSION,
        "method": catalog.method,
        "budget_per_tag": catalog.budget_per_tag.nbytes,
        "workspace": [catalog.workspace.lo, catalog.workspace.hi],
        "entries": {
            tag: {
                "cardinality": entry.cardinality,
                "ancestor_histogram": _histogram_to_json(
                    entry.ancestor_histogram
                ),
                "descendant_histogram": _histogram_to_json(
                    entry.descendant_histogram
                ),
                "sample": _sample_to_json(entry.sample),
            }
            for tag, entry in catalog._entries.items()
        },
    }
    path.write_text(json.dumps(document))
    return path


def load_catalog(path: str | Path) -> StatisticsCatalog:
    """Restore a catalog written by :func:`save_catalog`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"catalog file {path} does not exist")
    document = json.loads(path.read_text())
    if document.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported catalog format version "
            f"{document.get('format_version')!r}"
        )
    catalog = StatisticsCatalog.__new__(StatisticsCatalog)
    catalog.method = document["method"]
    catalog.budget_per_tag = SpaceBudget(document["budget_per_tag"])
    catalog.workspace = Workspace(*document["workspace"])
    catalog._entries = {
        tag: CatalogEntry(
            tag=tag,
            cardinality=int(payload["cardinality"]),
            ancestor_histogram=_histogram_from_json(
                payload["ancestor_histogram"]
            ),
            descendant_histogram=_histogram_from_json(
                payload["descendant_histogram"]
            ),
            sample=_sample_from_json(payload["sample"]),
        )
        for tag, payload in document["entries"].items()
    }
    return catalog
