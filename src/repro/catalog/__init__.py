"""The statistics catalog: how an optimizer deploys the estimators.

A query optimizer cannot rebuild synopses per estimate; it maintains a
catalog of per-tag statistics built once (at load time, under a space
budget) and consults it at plan time.  :class:`repro.catalog.catalog.
StatisticsCatalog` provides exactly that layer over the paper's methods.
"""

from repro.catalog.catalog import CatalogEntry, StatisticsCatalog
from repro.catalog.persistence import load_catalog, save_catalog

__all__ = [
    "CatalogEntry",
    "StatisticsCatalog",
    "load_catalog",
    "save_catalog",
]
