"""The ambient feedback state: one flag, one store.

Mirrors :mod:`repro.obs.runtime`: truth-producing call sites (the exact
cardinality generator, the qa oracles, a harness computing real join
sizes) are guarded by :func:`enabled` — the disabled path costs one
attribute load and one branch.  :func:`use_feedback` installs a
:class:`~repro.feedback.store.FeedbackStore` for a ``with`` block; the
previous ambient state is restored on exit, so tests compose.

The helpers centralize how feedback enters the store so call sites stay
one-liners: :func:`record_feedback` appends an estimate observation,
:func:`observe_truth` records an exact join size for an operand pair
(back-filling records already stored for it).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, TYPE_CHECKING

from repro.feedback.store import (
    FeedbackRecord,
    FeedbackStore,
    featurize,
    pair_key,
    query_class,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.nodeset import NodeSet

__all__ = [
    "enabled",
    "get_store",
    "use_feedback",
    "record_feedback",
    "observe_truth",
]

_enabled = False
_store: FeedbackStore | None = None
_swap_lock = threading.Lock()


def enabled() -> bool:
    """True while an ambient feedback store is installed (cheap guard)."""
    return _enabled


def get_store() -> FeedbackStore | None:
    """The ambient feedback store, if one is installed."""
    return _store


@contextmanager
def use_feedback(
    store: FeedbackStore | None = None,
) -> Iterator[FeedbackStore]:
    """Install a feedback store ambiently for the block.

    Args:
        store: the store to record into; defaults to a fresh one, so the
            block's feedback is isolated.

    Yields the installed store.
    """
    global _enabled, _store
    new_store = store if store is not None else FeedbackStore()
    with _swap_lock:
        previous = (_enabled, _store)
        _enabled = True
        _store = new_store
    try:
        yield new_store
    finally:
        with _swap_lock:
            _enabled, _store = previous


def record_feedback(
    ancestors: "NodeSet",
    descendants: "NodeSet",
    method: str,
    estimate: float,
    *,
    exact: float | None = None,
    latency_s: float = 0.0,
    status: str = "ok",
    degraded_reason: str | None = None,
    request_id: str | None = None,
    store: FeedbackStore | None = None,
) -> FeedbackRecord | None:
    """Record one served estimate into ``store`` (or the ambient one).

    Builds the :class:`FeedbackRecord` — query class, features and pair
    key derived from the operands — and appends it.  Returns the stored
    record, or None when no store is available.
    """
    target = store if store is not None else _store
    if target is None:
        return None
    record = FeedbackRecord(
        query_class=query_class(ancestors, descendants),
        method=method,
        estimate=float(estimate),
        features=featurize(ancestors, descendants),
        exact=exact,
        latency_s=latency_s,
        status=status,
        degraded_reason=degraded_reason,
        pair_key=pair_key(ancestors, descendants),
        request_id=request_id,
    )
    return target.add(record)


def observe_truth(
    ancestors: "NodeSet",
    descendants: "NodeSet",
    exact: float,
    *,
    store: FeedbackStore | None = None,
) -> int:
    """Record an exact join size into ``store`` (or the ambient one).

    Call sites guard with :func:`enabled` when no explicit store is
    passed.  Returns how many retained records gained truth (0 when no
    store is available).
    """
    target = store if store is not None else _store
    if target is None:
        return 0
    return target.observe_truth(ancestors, descendants, exact)
