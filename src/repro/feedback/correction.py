"""Per-query-class correction of estimator bias, learned from feedback.

The paper's estimators carry *systematic*, workload-dependent bias: a PL
histogram over a skewed tag under-counts the same way on every repeat of
the query, and a sampling estimator's log-space mean is offset from the
truth even when unbiased in expectation (Jensen).  Both are visible in
the feedback store — records pairing an estimate with the exact size —
and both are multiplicative, so they are learned here in log space:

    log(exact + 1) − log(estimate + 1) ≈ features · β

one small ridge least-squares (or median, for the quantile variant) per
query class, dependency-free numpy.  Applying the model multiplies the
raw estimate by ``exp(features · β)`` (clamped); classes without a
fitted model get multiplier 1.0 **exactly**, so an unfitted (or
disabled) correction path is bit-identical to the raw estimate — the
property every existing identity gate relies on.

A fitted class must *earn* its model: :meth:`CorrectionModel.fit` drops
any per-class fit that fails to reduce the training (or, with
``holdout=``, held-out) mean relative error.  The model never makes a
class it cannot improve worse.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import FeedbackError
from repro.estimators.base import _from_wire_float, _to_wire
from repro.feedback.store import FeedbackRecord, FeedbackStore

__all__ = [
    "CORRECTION_SCHEMA_VERSION",
    "CorrectionModel",
    "mean_relative_error",
]

#: Version of the :meth:`CorrectionModel.to_dict` wire schema.
CORRECTION_SCHEMA_VERSION = 1

_MODES = ("linear", "median")


def mean_relative_error(
    records: Iterable[FeedbackRecord],
    model: "CorrectionModel | None" = None,
) -> float | None:
    """Mean ``|estimate − exact| / exact`` over truth-known records.

    With ``model`` the estimates are corrected first.  Records without
    finite truth (or with zero truth) are skipped; returns None when
    nothing qualifies.
    """
    total = 0.0
    count = 0
    for record in records:
        exact = record.exact
        if exact is None or not math.isfinite(exact) or exact <= 0:
            continue
        value = record.estimate
        if model is not None:
            value = model.correct(
                value,
                record.query_class,
                record.features,
                method=record.method,
            )
        total += abs(value - exact) / exact
        count += 1
    return total / count if count else None


class CorrectionModel:
    """Opt-in post-multiplier over raw estimates, one fit per class.

    Args:
        mode: "linear" (ridge least squares over the feature vector) or
            "median" (intercept-only median log-residual — the robust
            quantile variant).
        per_method: fit one correction per ``(query class, method)``
            cell (the default — PL's bias on a class is not IM's) or,
            when False, one per class pooling all methods.
        min_samples: smallest truth-known record count a class needs
            before it may be fitted.
        ridge: Tikhonov weight for the linear mode.
        max_multiplier: clamp on the applied multiplier (both
            directions), a safety rail against extrapolation.
    """

    def __init__(
        self,
        *,
        mode: str = "linear",
        per_method: bool = True,
        min_samples: int = 4,
        ridge: float = 1e-6,
        max_multiplier: float = 1e6,
    ) -> None:
        if mode not in _MODES:
            raise FeedbackError(
                f"unknown correction mode {mode!r} "
                f"(expected one of {_MODES})"
            )
        if min_samples < 1:
            raise FeedbackError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        if max_multiplier <= 1.0:
            raise FeedbackError(
                f"max_multiplier must be > 1, got {max_multiplier}"
            )
        self.mode = mode
        self.per_method = bool(per_method)
        self.min_samples = min_samples
        self.ridge = float(ridge)
        self.max_multiplier = float(max_multiplier)
        #: cell label -> coefficient vector (numpy 1-D, feature order).
        self._coef: dict[str, np.ndarray] = {}

    def cell(self, query_class: str, method: str | None = None) -> str:
        """The fit-cell label: ``class·method`` or just the class."""
        if self.per_method:
            return f"{query_class}·{method}" if method else query_class
        return query_class

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        source: FeedbackStore | Iterable[FeedbackRecord],
        *,
        holdout: float = 0.0,
    ) -> dict[str, dict[str, Any]]:
        """Fit per-class corrections from truth-known records.

        Args:
            source: a :class:`FeedbackStore` or iterable of records;
                only records with finite positive truth participate.
            holdout: fraction (0 ≤ h < 1) of each class's records (the
                tail, in record order) reserved for validation: a class
                keeps its fit only when held-out MRE does not increase.
                0 validates on the training records themselves.

        Returns a per-class fit report
        (``{"records", "mre_before", "mre_after", "fitted"}``).
        """
        if not 0.0 <= holdout < 1.0:
            raise FeedbackError(
                f"holdout must be in [0, 1), got {holdout}"
            )
        records = (
            source.records(with_truth=True)
            if isinstance(source, FeedbackStore)
            else list(source)
        )
        by_class: dict[str, list[FeedbackRecord]] = {}
        for record in records:
            exact = record.exact
            if exact is None or not math.isfinite(exact) or exact <= 0:
                continue
            if not record.features:
                continue
            label = self.cell(record.query_class, record.method)
            by_class.setdefault(label, []).append(record)

        report: dict[str, dict[str, Any]] = {}
        self._coef.clear()
        for query_class in sorted(by_class):
            rows = by_class[query_class]
            split = (
                len(rows) - int(round(holdout * len(rows)))
                if holdout
                else len(rows)
            )
            train, check = rows[:split], rows[split:] or rows[:split]
            row = {
                "records": len(rows),
                "mre_before": mean_relative_error(check),
                "mre_after": None,
                "fitted": False,
            }
            report[query_class] = row
            if len(train) < self.min_samples:
                row["mre_after"] = row["mre_before"]
                continue
            coef = self._solve(train)
            if coef is None:
                row["mre_after"] = row["mre_before"]
                continue
            self._coef[query_class] = coef
            corrected = mean_relative_error(check, self)
            if (
                corrected is None
                or row["mre_before"] is None
                or corrected > row["mre_before"]
            ):
                # The fit does not improve validation: drop it, keeping
                # the identity multiplier (never worse than raw).
                del self._coef[query_class]
                row["mre_after"] = row["mre_before"]
            else:
                row["mre_after"] = corrected
                row["fitted"] = True
        return report

    def _solve(
        self, records: Sequence[FeedbackRecord]
    ) -> np.ndarray | None:
        dims = {len(r.features) for r in records}
        if len(dims) != 1:
            return None
        x = np.asarray([r.features for r in records], dtype=np.float64)
        y = np.log1p(
            np.asarray([r.exact for r in records], dtype=np.float64)
        ) - np.log1p(
            np.asarray([r.estimate for r in records], dtype=np.float64)
        )
        if not np.all(np.isfinite(y)):
            return None
        if self.mode == "median":
            coef = np.zeros(x.shape[1], dtype=np.float64)
            coef[0] = float(np.median(y))
            return coef
        gram = x.T @ x + self.ridge * np.eye(x.shape[1])
        try:
            return np.linalg.solve(gram, x.T @ y)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate
            return None

    # ------------------------------------------------------------------
    # Applying
    # ------------------------------------------------------------------

    @property
    def fitted_classes(self) -> tuple[str, ...]:
        return tuple(sorted(self._coef))

    def predict_multiplier(
        self,
        query_class: str,
        features: Sequence[float],
        *,
        method: str | None = None,
    ) -> float:
        """The cell's learned multiplier; **exactly** 1.0 when unfitted."""
        coef = self._coef.get(self.cell(query_class, method))
        if coef is None or len(features) != coef.shape[0]:
            return 1.0
        bound = math.log(self.max_multiplier)
        shift = float(
            np.clip(
                np.asarray(features, dtype=np.float64) @ coef,
                -bound,
                bound,
            )
        )
        return math.exp(shift)

    def correct(
        self,
        value: float,
        query_class: str,
        features: Sequence[float],
        *,
        method: str | None = None,
    ) -> float:
        """Apply the correction in log1p space; identity when unfitted."""
        multiplier = self.predict_multiplier(
            query_class, features, method=method
        )
        if multiplier == 1.0:
            return value
        # log1p(corrected) = log1p(value) + log(multiplier), i.e. the
        # shift learned on the log1p residual: (value + 1) · m − 1.
        return max(0.0, (max(0.0, value) + 1.0) * multiplier - 1.0)

    # ------------------------------------------------------------------
    # Wire schema
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON wire form (schema_version 1)."""
        return {
            "schema_version": CORRECTION_SCHEMA_VERSION,
            "mode": self.mode,
            "per_method": self.per_method,
            "min_samples": self.min_samples,
            "ridge": _to_wire(self.ridge),
            "max_multiplier": _to_wire(self.max_multiplier),
            "classes": {
                query_class: [_to_wire(c) for c in coef.tolist()]
                for query_class, coef in sorted(self._coef.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CorrectionModel":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        if not isinstance(payload, Mapping):
            raise FeedbackError(
                f"correction payload must be a mapping, "
                f"got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != CORRECTION_SCHEMA_VERSION:
            raise FeedbackError(
                f"unsupported correction schema_version {version!r} "
                f"(this version reads {CORRECTION_SCHEMA_VERSION})"
            )
        try:
            model = cls(
                mode=str(payload.get("mode", "linear")),
                per_method=bool(payload.get("per_method", True)),
                min_samples=int(payload.get("min_samples", 4)),
                ridge=float(_from_wire_float(payload.get("ridge", 1e-6))),
                max_multiplier=float(
                    _from_wire_float(payload.get("max_multiplier", 1e6))
                ),
            )
            for query_class, coef in payload.get("classes", {}).items():
                model._coef[str(query_class)] = np.asarray(
                    [_from_wire_float(c) for c in coef],
                    dtype=np.float64,
                )
        except (KeyError, TypeError, ValueError) as error:
            raise FeedbackError(
                f"malformed correction payload: {error}"
            ) from error
        return model
