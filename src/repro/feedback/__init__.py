"""Serving feedback: record what was answered, learn what was wrong.

The closed-loop half of the serving stack (the other half is
:mod:`repro.router`): a :class:`FeedbackStore` accumulates
:class:`FeedbackRecord` rows — query class, method, estimate, truth when
known, latency, degradation reason — with order-free per-(class, method)
aggregates that snapshot/merge like :mod:`repro.obs` metrics, and a
:class:`CorrectionModel` turns the truth-known rows into per-class
log-space multipliers applied (opt-in) over raw estimates.

Truth enters through :func:`observe_truth` / the ambient
:func:`use_feedback` context — the exact cardinality generator and the
qa oracles record the real sizes they compute, completing the records
the service stored for the same operand pairs.
"""

from repro.feedback.correction import (
    CORRECTION_SCHEMA_VERSION,
    CorrectionModel,
    mean_relative_error,
)
from repro.feedback.runtime import (
    enabled,
    get_store,
    observe_truth,
    record_feedback,
    use_feedback,
)
from repro.feedback.store import (
    FEEDBACK_SCHEMA_VERSION,
    FeedbackRecord,
    FeedbackStore,
    MethodStats,
    featurize,
    pair_key,
    query_class,
)

__all__ = [
    "CORRECTION_SCHEMA_VERSION",
    "FEEDBACK_SCHEMA_VERSION",
    "CorrectionModel",
    "FeedbackRecord",
    "FeedbackStore",
    "MethodStats",
    "enabled",
    "featurize",
    "get_store",
    "mean_relative_error",
    "observe_truth",
    "pair_key",
    "query_class",
    "record_feedback",
    "use_feedback",
]
