"""The feedback store: what the serving layer learned about its answers.

Every answer the :class:`~repro.service.EstimationService` produces is a
data point — which method ran, what it said, how long it took, and (when
the memo table, the :class:`~repro.optimizer.generator.ExactGenerator`,
or a qa oracle later produces the true size) how wrong it was.  Today
that signal is discarded the moment the response is returned; the
:class:`FeedbackStore` keeps it, as

* an append-only (bounded) log of :class:`FeedbackRecord` rows, and
* exact per-``(query class, method)`` aggregates — observation counts,
  error sums, latency sums — that survive any snapshot/merge order.

The aggregates are deliberately *order-free* (counts and sums, the same
discipline as :class:`~repro.obs.metrics.MetricsRegistry`): merging two
snapshots is associative and commutative, so a router fed from ``K``
worker stores makes exactly the decisions it would make single-threaded.
An EWMA latency is also maintained for display (it reacts faster), but
anything a :class:`~repro.router.Router` consumes comes from the
order-free sums.

Truth arrives out of band: :meth:`FeedbackStore.observe_truth` records
the exact join size for an operand pair (keyed by content fingerprints),
back-fills every retained record for that pair, and folds the signed
relative error into the aggregates.  Record-then-truth and
truth-then-record produce identical aggregates.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Mapping

from repro.core.errors import FeedbackError
from repro.core.nodeset import NodeSet
from repro.estimators.base import _from_wire_float, _to_wire

__all__ = [
    "FEEDBACK_SCHEMA_VERSION",
    "FeedbackRecord",
    "FeedbackStore",
    "MethodStats",
    "query_class",
    "featurize",
]

#: Version of the :meth:`FeedbackRecord.to_dict` wire schema (and of the
#: store's :meth:`FeedbackStore.snapshot` payload).  Bumped on renames or
#: meaning changes; additions are backward compatible.
FEEDBACK_SCHEMA_VERSION = 1


def _size_bucket(n: int) -> int:
    """Log2 cardinality bucket: 0 for empty, else ``floor(log2(n)) + 1``."""
    if n <= 0:
        return 0
    return n.bit_length()


def query_class(ancestors: NodeSet, descendants: NodeSet) -> str:
    """A stable query-class label for an operand pair.

    Classes group "the same query shape at the same scale": the two tag
    names plus log2 cardinality buckets, e.g. ``item[10]//name[12]``.
    Same-tag operands at similar sizes share a class (and therefore a
    bandit arm history and a correction model); a filtered set an order
    of magnitude smaller lands in a different class.
    """
    return (
        f"{ancestors.name}[{_size_bucket(len(ancestors))}]"
        f"//{descendants.name}[{_size_bucket(len(descendants))}]"
    )


def featurize(ancestors: NodeSet, descendants: NodeSet) -> tuple[float, ...]:
    """Correction-model features from the operand summaries.

    Cheap, log-scale, and derived only from per-set statistics the
    summaries already expose: cardinalities and average region lengths
    (the quantities the paper's models consume).  The leading 1.0 is the
    intercept column.
    """
    return (
        1.0,
        math.log1p(float(len(ancestors))),
        math.log1p(float(len(descendants))),
        math.log1p(max(0.0, float(ancestors.average_length))),
        math.log1p(max(0.0, float(descendants.average_length))),
    )


@dataclass(slots=True)
class FeedbackRecord:
    """One served estimate, with truth when known.

    Attributes:
        query_class: :func:`query_class` label of the operand pair.
        method: the method that actually produced the answer (the routed
            method when a router chose; ``"BOUND"`` for the bound arm).
        estimate: the returned value.
        features: :func:`featurize` vector of the operand pair.
        exact: the true join size when known, else None.
        latency_s: service-side residency of the request.
        status: response status ("ok"/"degraded"/"shed").
        degraded_reason: why the ladder answered, None for full fidelity.
        pair_key: operand content fingerprints ``"a_fp//d_fp"`` — how
            truth observed later finds this record.
        request_id: correlation id, when the record came from the service.
    """

    query_class: str
    method: str
    estimate: float
    features: tuple[float, ...] = ()
    exact: float | None = None
    latency_s: float = 0.0
    status: str = "ok"
    degraded_reason: str | None = None
    pair_key: str | None = None
    request_id: str | None = None

    @property
    def signed_relative_error(self) -> float | None:
        """``(estimate - exact) / exact``, or None without truth.

        Dimensionless (not a percentage): the router's reward signal.
        Zero truth follows the :class:`~repro.estimators.base.Estimate`
        convention — 0.0 for an exact answer, ``inf`` otherwise.
        """
        if self.exact is None:
            return None
        if self.exact == 0:
            return 0.0 if self.estimate == 0 else math.inf
        return (self.estimate - self.exact) / self.exact

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON wire form (schema_version 1)."""
        return {
            "schema_version": FEEDBACK_SCHEMA_VERSION,
            "query_class": self.query_class,
            "method": self.method,
            "estimate": _to_wire(self.estimate),
            "features": [_to_wire(f) for f in self.features],
            "exact": _to_wire(self.exact),
            "latency_s": _to_wire(self.latency_s),
            "status": self.status,
            "degraded_reason": self.degraded_reason,
            "pair_key": self.pair_key,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FeedbackRecord":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        if not isinstance(payload, Mapping):
            raise FeedbackError(
                f"feedback record payload must be a mapping, "
                f"got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != FEEDBACK_SCHEMA_VERSION:
            raise FeedbackError(
                f"unsupported feedback record schema_version {version!r} "
                f"(this version reads {FEEDBACK_SCHEMA_VERSION})"
            )
        try:
            return cls(
                query_class=str(payload["query_class"]),
                method=str(payload["method"]),
                estimate=float(_from_wire_float(payload["estimate"])),
                features=tuple(
                    float(_from_wire_float(f))
                    for f in payload.get("features", ())
                ),
                exact=_from_wire_float(payload.get("exact")),
                latency_s=float(
                    _from_wire_float(payload.get("latency_s", 0.0))
                ),
                status=str(payload.get("status", "ok")),
                degraded_reason=payload.get("degraded_reason"),
                pair_key=payload.get("pair_key"),
                request_id=payload.get("request_id"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise FeedbackError(
                f"malformed feedback record payload: {error}"
            ) from error


@dataclass(slots=True)
class MethodStats:
    """Order-free aggregates for one ``(query class, method)`` cell.

    Everything the router reads is a count or a sum, so folding two
    cells together (:meth:`merge`) commutes — the obs snapshot/merge
    discipline.  ``ewma_latency_s`` is display-only (it depends on
    arrival order by construction) and is never consumed by routing.
    """

    count: int = 0
    truth_count: int = 0
    abs_error_sum: float = 0.0
    error_sum: float = 0.0
    latency_sum: float = 0.0
    ewma_latency_s: float | None = None
    _EWMA_ALPHA: float = field(default=0.3, repr=False)

    def observe(self, record: FeedbackRecord) -> None:
        self.count += 1
        self.latency_sum += record.latency_s
        alpha = self._EWMA_ALPHA
        self.ewma_latency_s = (
            record.latency_s
            if self.ewma_latency_s is None
            else alpha * record.latency_s
            + (1.0 - alpha) * self.ewma_latency_s
        )
        error = record.signed_relative_error
        if error is not None and math.isfinite(error):
            self.truth_count += 1
            self.abs_error_sum += abs(error)
            self.error_sum += error

    def observe_truth(self, error: float) -> None:
        """Fold a late-arriving signed relative error into the cell."""
        if math.isfinite(error):
            self.truth_count += 1
            self.abs_error_sum += abs(error)
            self.error_sum += error

    @property
    def mean_abs_error(self) -> float | None:
        if self.truth_count == 0:
            return None
        return self.abs_error_sum / self.truth_count

    @property
    def mean_latency_s(self) -> float:
        if self.count == 0:
            return 0.0
        return self.latency_sum / self.count

    def merge(self, other: "MethodStats") -> None:
        if other.count:
            # Deterministic tie-less combination: the merged EWMA is the
            # count-weighted mean of the two EWMAs, which is symmetric.
            if self.ewma_latency_s is None:
                self.ewma_latency_s = other.ewma_latency_s
            elif other.ewma_latency_s is not None:
                total = self.count + other.count
                self.ewma_latency_s = (
                    self.count * self.ewma_latency_s
                    + other.count * other.ewma_latency_s
                ) / total
        self.count += other.count
        self.truth_count += other.truth_count
        self.abs_error_sum += other.abs_error_sum
        self.error_sum += other.error_sum
        self.latency_sum += other.latency_sum

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "truth_count": self.truth_count,
            "abs_error_sum": _to_wire(self.abs_error_sum),
            "error_sum": _to_wire(self.error_sum),
            "latency_sum": _to_wire(self.latency_sum),
            "ewma_latency_s": _to_wire(self.ewma_latency_s),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MethodStats":
        try:
            return cls(
                count=int(payload["count"]),
                truth_count=int(payload["truth_count"]),
                abs_error_sum=float(
                    _from_wire_float(payload["abs_error_sum"])
                ),
                error_sum=float(_from_wire_float(payload["error_sum"])),
                latency_sum=float(
                    _from_wire_float(payload["latency_sum"])
                ),
                ewma_latency_s=_from_wire_float(
                    payload.get("ewma_latency_s")
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise FeedbackError(
                f"malformed method-stats payload: {error}"
            ) from error


def pair_key(ancestors: NodeSet, descendants: NodeSet) -> str:
    """Content key joining truth observations to feedback records."""
    return f"{ancestors.fingerprint}//{descendants.fingerprint}"


class FeedbackStore:
    """Thread-safe store of served-estimate feedback.

    Args:
        max_records: retained-record bound.  Aggregates stay exact past
            the bound; overflow records are counted (``dropped``) but not
            retained, so truth arriving later cannot back-fill them.
    """

    def __init__(self, *, max_records: int = 100_000) -> None:
        if max_records < 0:
            raise FeedbackError(
                f"max_records must be >= 0, got {max_records}"
            )
        self.max_records = max_records
        self._lock = threading.Lock()
        self._records: list[FeedbackRecord] = []
        self._dropped = 0
        self._stats: dict[tuple[str, str], MethodStats] = {}
        self._truths: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def add(self, record: FeedbackRecord) -> FeedbackRecord:
        """Append one record; returns the (possibly truth-filled) row.

        When the record carries no ``exact`` but truth for its pair was
        already observed, the stored copy is completed with it, so the
        aggregates are identical whichever of record/truth arrived first.
        """
        if not isinstance(record, FeedbackRecord):
            raise FeedbackError(
                f"expected a FeedbackRecord, got {type(record).__name__}"
            )
        with self._lock:
            if record.exact is None and record.pair_key is not None:
                exact = self._truths.get(record.pair_key)
                if exact is not None:
                    record = replace(record, exact=exact)
            cell = self._cell(record.query_class, record.method)
            cell.observe(record)
            if len(self._records) < self.max_records:
                self._records.append(record)
            else:
                self._dropped += 1
        return record

    def observe_truth(
        self,
        ancestors: NodeSet,
        descendants: NodeSet,
        exact: float,
    ) -> int:
        """Record the true join size for an operand pair.

        Back-fills every retained truth-less record of the pair (folding
        its error into the aggregates) and remembers the truth so future
        records complete on arrival.  Returns how many retained records
        gained truth.
        """
        return self.observe_truth_key(
            pair_key(ancestors, descendants), float(exact)
        )

    def observe_truth_key(self, key: str, exact: float) -> int:
        """:meth:`observe_truth` by precomputed pair key."""
        exact = float(exact)
        filled = 0
        with self._lock:
            self._truths[key] = exact
            for i, record in enumerate(self._records):
                if record.pair_key == key and record.exact is None:
                    updated = replace(record, exact=exact)
                    self._records[i] = updated
                    error = updated.signed_relative_error
                    if error is not None:
                        self._cell(
                            updated.query_class, updated.method
                        ).observe_truth(error)
                    filled += 1
        return filled

    def truth_for(self, key: str) -> float | None:
        """The recorded exact size for a pair key, if any."""
        with self._lock:
            return self._truths.get(key)

    def _cell(self, query_class: str, method: str) -> MethodStats:
        cell = self._stats.get((query_class, method))
        if cell is None:
            cell = self._stats[(query_class, method)] = MethodStats()
        return cell

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(
        self,
        *,
        query_class: str | None = None,
        method: str | None = None,
        with_truth: bool = False,
    ) -> list[FeedbackRecord]:
        """Retained records, optionally filtered."""
        with self._lock:
            rows = list(self._records)
        if query_class is not None:
            rows = [r for r in rows if r.query_class == query_class]
        if method is not None:
            rows = [r for r in rows if r.method == method]
        if with_truth:
            rows = [r for r in rows if r.exact is not None]
        return rows

    def classes(self) -> tuple[str, ...]:
        """Query classes seen, sorted (a deterministic iteration order)."""
        with self._lock:
            return tuple(sorted({qc for qc, _ in self._stats}))

    def method_stats(
        self, query_class: str
    ) -> dict[str, MethodStats]:
        """Per-method aggregate *copies* for one class, sorted by method."""
        with self._lock:
            return {
                method: replace(cell)
                for (qc, method), cell in sorted(self._stats.items())
                if qc == query_class
            }

    def stats(self) -> dict[str, Any]:
        """Summary for ``service.stats()`` / ``obs-report``."""
        with self._lock:
            truth = sum(
                1 for r in self._records if r.exact is not None
            )
            return {
                "records": len(self._records),
                "dropped": self._dropped,
                "with_truth": truth,
                "classes": len({qc for qc, _ in self._stats}),
                "truths": len(self._truths),
            }

    # ------------------------------------------------------------------
    # Snapshot / merge (the obs protocol)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able copy of everything (records up to the bound).

        ``merge`` of snapshots is associative and commutative over the
        aggregates, so per-worker stores folded in any order yield the
        same totals — the property the router's determinism rests on.
        """
        with self._lock:
            return {
                "schema_version": FEEDBACK_SCHEMA_VERSION,
                "records": [r.to_dict() for r in self._records],
                "dropped": self._dropped,
                "stats": {
                    f"{qc}␟{method}": cell.to_dict()
                    for (qc, method), cell in sorted(self._stats.items())
                },
                "truths": {
                    key: _to_wire(value)
                    for key, value in sorted(self._truths.items())
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another store's :meth:`snapshot` into this one."""
        if not isinstance(snapshot, Mapping):
            raise FeedbackError(
                f"feedback snapshot must be a mapping, "
                f"got {type(snapshot).__name__}"
            )
        version = snapshot.get("schema_version")
        if version != FEEDBACK_SCHEMA_VERSION:
            raise FeedbackError(
                f"unsupported feedback snapshot schema_version "
                f"{version!r} (this version reads "
                f"{FEEDBACK_SCHEMA_VERSION})"
            )
        records = [
            FeedbackRecord.from_dict(row)
            for row in snapshot.get("records", ())
        ]
        stats: dict[tuple[str, str], MethodStats] = {}
        for key, payload in snapshot.get("stats", {}).items():
            qc, sep, method = key.partition("␟")
            if not sep:
                raise FeedbackError(
                    f"malformed stats key in feedback snapshot: {key!r}"
                )
            stats[(qc, method)] = MethodStats.from_dict(payload)
        with self._lock:
            for key, value in snapshot.get("truths", {}).items():
                self._truths.setdefault(
                    str(key), float(_from_wire_float(value))
                )
            room = self.max_records - len(self._records)
            self._records.extend(records[: max(0, room)])
            self._dropped += int(snapshot.get("dropped", 0)) + max(
                0, len(records) - max(0, room)
            )
            for cell_key, cell in stats.items():
                self._cell(*cell_key).merge(cell)

    @classmethod
    def from_snapshot(
        cls, snapshot: Mapping[str, Any], *, max_records: int = 100_000
    ) -> "FeedbackStore":
        store = cls(max_records=max_records)
        store.merge(snapshot)
        return store

    def __iter__(self) -> Iterator[FeedbackRecord]:
        return iter(self.records())

    def extend(self, records: Iterable[FeedbackRecord]) -> None:
        for record in records:
            self.add(record)
