"""Containment join size estimation for XML data.

A full reproduction of Wang, Jiang, Lu and Yu, *Containment Join Size
Estimation: Models and Methods* (SIGMOD 2003).

The package provides:

* region-coded XML data trees and element sets (:mod:`repro.core`,
  :mod:`repro.xmltree`),
* synthetic XMark/DBLP/XMach-like dataset generators (:mod:`repro.datasets`),
* exact containment join algorithms (:mod:`repro.join`),
* the paper's interval and position models (:mod:`repro.models`),
* indexes used for sampling probes — B+-tree, T-tree, XR-tree
  (:mod:`repro.index`),
* the estimators themselves — PL histogram, PH/coverage histogram
  baselines, IM-DA-Est and PM-Est sampling (:mod:`repro.estimators`),
* a small cost-based containment-join-order optimizer
  (:mod:`repro.optimizer`), and
* the experiment harness that regenerates every table and figure of the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro.datasets import generate_xmark
    from repro.join import containment_join_size
    from repro.estimators import IMSamplingEstimator

    tree = generate_xmark(scale=0.1, seed=42)
    ancestors = tree.node_set("item")
    descendants = tree.node_set("name")

    exact = containment_join_size(ancestors, descendants)
    estimate = IMSamplingEstimator(num_samples=100, seed=7).estimate(
        ancestors, descendants
    )
"""

from repro.core.budget import SpaceBudget
from repro.core.element import Element, Region
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace

__version__ = "1.0.0"

__all__ = [
    "Element",
    "Region",
    "NodeSet",
    "Workspace",
    "SpaceBudget",
    "__version__",
]
