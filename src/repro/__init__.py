"""Containment join size estimation for XML data.

A full reproduction of Wang, Jiang, Lu and Yu, *Containment Join Size
Estimation: Models and Methods* (SIGMOD 2003).

The package provides:

* region-coded XML data trees and element sets (:mod:`repro.core`,
  :mod:`repro.xmltree`),
* synthetic XMark/DBLP/XMach-like dataset generators (:mod:`repro.datasets`),
* exact containment join algorithms (:mod:`repro.join`),
* the paper's interval and position models (:mod:`repro.models`),
* indexes used for sampling probes — B+-tree, T-tree, XR-tree
  (:mod:`repro.index`),
* the estimators themselves — PL histogram, PH/coverage histogram
  baselines, IM-DA-Est and PM-Est sampling (:mod:`repro.estimators`),
* a small cost-based containment-join-order optimizer
  (:mod:`repro.optimizer`), and
* the experiment harness that regenerates every table and figure of the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart (the stable public surface, see ``docs/API.md``)::

    import repro
    from repro.datasets import generate_xmark

    tree = generate_xmark(scale=0.1, seed=42)
    result = repro.estimate(
        tree.node_set("item"), tree.node_set("name"),
        method="IM", num_samples=100, seed=7,
    )
    print(result.value, result.details)

Observability (:mod:`repro.obs`)::

    from repro import obs

    with obs.observe(sink=obs.TelemetrySink("telemetry.jsonl")) as reg:
        repro.estimate(ancestors, descendants, method="PL", num_buckets=20)
        obs.emit_summary()

Everything importable from ``repro`` directly is the documented public
API; deeper ``repro.*`` modules are internals with no stability
guarantee.
"""

from repro.core.budget import SpaceBudget
from repro.core.element import Element, Region
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.api import (
    CardinalityGenerator,
    CatalogStore,
    CorrectionModel,
    Estimate,
    EstimateRequest,
    EstimateResponse,
    EstimationService,
    Estimator,
    FeedbackRecord,
    FeedbackStore,
    JoinPlan,
    LiveWorkspace,
    Mutation,
    MutationBatch,
    MutationFeed,
    Router,
    available_backends,
    available_estimators,
    available_generators,
    available_modules,
    available_routers,
    build_catalog,
    estimate,
    kernel_backend,
    make_estimator,
    optimize,
    plan_cost,
    record_feedback,
    resolve_generator,
    resolve_module,
    resolve_router,
    serve,
    set_kernel_backend,
    use_feedback,
    use_kernel_backend,
)

__version__ = "1.8.0"

__all__ = [
    "CardinalityGenerator",
    "CatalogStore",
    "CorrectionModel",
    "Element",
    "Estimate",
    "EstimateRequest",
    "EstimateResponse",
    "EstimationService",
    "Estimator",
    "FeedbackRecord",
    "FeedbackStore",
    "JoinPlan",
    "LiveWorkspace",
    "Mutation",
    "MutationBatch",
    "MutationFeed",
    "NodeSet",
    "Region",
    "Router",
    "SpaceBudget",
    "Workspace",
    "available_backends",
    "available_estimators",
    "available_generators",
    "available_modules",
    "available_routers",
    "build_catalog",
    "estimate",
    "kernel_backend",
    "make_estimator",
    "optimize",
    "plan_cost",
    "record_feedback",
    "resolve_generator",
    "resolve_module",
    "resolve_router",
    "serve",
    "set_kernel_backend",
    "use_feedback",
    "use_kernel_backend",
    "__version__",
]
