"""An in-memory B+-tree with point, floor and range lookups.

Keys are ints (region-code positions); values are arbitrary.  The tree
supports incremental insertion and O(n) bulk loading from sorted pairs.
All data lives in the leaf level, leaves are chained for range scans, and
internal nodes hold separator keys — the classic B+-tree layout the paper's
T-tree builds on (Figure 4).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator

from repro.core.errors import ReproError

DEFAULT_ORDER = 32


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[int] = []  # keys[i] = min key of children[i + 1]
        self.children: list[Any] = []


class BPlusTree:
    """A B+-tree mapping int keys to values.

    Args:
        order: maximum number of keys per node (>= 3).  Nodes split when
            they would exceed it.
    """

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise ReproError(f"B+-tree order must be >= 3, got {order}")
        self._order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls, items: list[tuple[int, Any]], order: int = DEFAULT_ORDER
    ) -> "BPlusTree":
        """Build a tree from key-ascending ``(key, value)`` pairs in O(n)."""
        tree = cls(order=order)
        if not items:
            return tree
        keys = [k for k, _ in items]
        if any(b <= a for a, b in zip(keys, keys[1:])):
            raise ReproError("bulk_load requires strictly ascending keys")

        per_leaf = max(2, (order + 1) // 2 + order // 4)
        leaves: list[_Leaf] = []
        for offset in range(0, len(items), per_leaf):
            leaf = _Leaf()
            chunk = items[offset : offset + per_leaf]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)

        level: list[tuple[int, Any]] = [(leaf.keys[0], leaf) for leaf in leaves]
        while len(level) > 1:
            parents: list[tuple[int, Any]] = []
            per_node = max(2, (order + 1) // 2 + order // 4)
            for offset in range(0, len(level), per_node):
                chunk = level[offset : offset + per_node]
                node = _Internal()
                node.children = [child for _, child in chunk]
                node.keys = [key for key, _ in chunk[1:]]
                parents.append((chunk[0][0], node))
            level = parents
            tree._height += 1
        tree._root = level[0][1]
        tree._size = len(items)
        return tree

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert ``key``; replaces the value if the key already exists."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert(
        self, node: _Leaf | _Internal, key: int, value: Any
    ) -> tuple[int, Any] | None:
        if isinstance(node, _Leaf):
            slot = bisect_left(node.keys, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                node.values[slot] = value
                return None
            node.keys.insert(slot, key)
            node.values.insert(slot, value)
            self._size += 1
            if len(node.keys) <= self._order:
                return None
            middle = len(node.keys) // 2
            right = _Leaf()
            right.keys = node.keys[middle:]
            right.values = node.values[middle:]
            right.next = node.next
            node.keys = node.keys[:middle]
            node.values = node.values[:middle]
            node.next = right
            return (right.keys[0], right)

        slot = bisect_right(node.keys, key)
        split = self._insert(node.children[slot], key, value)
        if split is None:
            return None
        separator, right_child = split
        node.keys.insert(slot, separator)
        node.children.insert(slot + 1, right_child)
        if len(node.keys) <= self._order:
            return None
        middle = len(node.keys) // 2
        right = _Internal()
        up_key = node.keys[middle]
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return (up_key, right)

    # ------------------------------------------------------------------
    # Deletion (borrow-or-merge rebalancing)
    # ------------------------------------------------------------------

    @property
    def _min_leaf_keys(self) -> int:
        return self._order // 2

    @property
    def _min_children(self) -> int:
        return self._order // 2 + 1

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False when it was not present."""
        removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
        if (
            isinstance(self._root, _Internal)
            and len(self._root.children) == 1
        ):
            self._root = self._root.children[0]
            self._height -= 1
        return removed

    def _delete(self, node: _Leaf | _Internal, key: int) -> bool:
        if isinstance(node, _Leaf):
            slot = bisect_left(node.keys, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                node.keys.pop(slot)
                node.values.pop(slot)
                return True
            return False
        slot = bisect_right(node.keys, key)
        removed = self._delete(node.children[slot], key)
        if removed:
            self._rebalance(node, slot)
        return removed

    def _underflowing(self, node: _Leaf | _Internal) -> bool:
        if isinstance(node, _Leaf):
            return len(node.keys) < self._min_leaf_keys
        return len(node.children) < self._min_children

    def _rebalance(self, parent: _Internal, slot: int) -> None:
        child = parent.children[slot]
        if not self._underflowing(child):
            return
        left = parent.children[slot - 1] if slot > 0 else None
        right = (
            parent.children[slot + 1]
            if slot + 1 < len(parent.children)
            else None
        )
        if isinstance(child, _Leaf):
            if left is not None and len(left.keys) > self._min_leaf_keys:
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[slot - 1] = child.keys[0]
                return
            if right is not None and len(right.keys) > self._min_leaf_keys:
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[slot] = right.keys[0]
                return
            # Merge with a sibling (prefer the left one).
            if left is not None:
                left.keys.extend(child.keys)
                left.values.extend(child.values)
                left.next = child.next
                parent.keys.pop(slot - 1)
                parent.children.pop(slot)
            elif right is not None:
                child.keys.extend(right.keys)
                child.values.extend(right.values)
                child.next = right.next
                parent.keys.pop(slot)
                parent.children.pop(slot + 1)
            return
        # Internal child.
        if left is not None and len(left.children) > self._min_children:
            child.keys.insert(0, parent.keys[slot - 1])
            parent.keys[slot - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
            return
        if right is not None and len(right.children) > self._min_children:
            child.keys.append(parent.keys[slot])
            parent.keys[slot] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
            return
        if left is not None:
            left.keys.append(parent.keys[slot - 1])
            left.keys.extend(child.keys)
            left.children.extend(child.children)
            parent.keys.pop(slot - 1)
            parent.children.pop(slot)
        elif right is not None:
            child.keys.append(parent.keys[slot])
            child.keys.extend(right.keys)
            child.children.extend(right.children)
            parent.keys.pop(slot)
            parent.children.pop(slot + 1)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _leaf_for(self, key: int) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[bisect_right(node.keys, key)]
        return node

    def get(self, key: int, default: Any = None) -> Any:
        """Value stored under exactly ``key``, or ``default``."""
        leaf = self._leaf_for(key)
        slot = bisect_left(leaf.keys, key)
        if slot < len(leaf.keys) and leaf.keys[slot] == key:
            return leaf.values[slot]
        return default

    def __contains__(self, key: int) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def floor_entry(self, key: int) -> tuple[int, Any] | None:
        """The entry with the largest key <= ``key``, or None.

        This is the lookup the T-tree issues: "find K_i <= q < K_{i+1}".
        """
        leaf = self._leaf_for(key)
        slot = bisect_right(leaf.keys, key) - 1
        if slot >= 0:
            return (leaf.keys[slot], leaf.values[slot])
        return None

    def range(self, lo: int, hi: int) -> Iterator[tuple[int, Any]]:
        """All entries with ``lo <= key <= hi`` in ascending key order."""
        leaf: _Leaf | None = self._leaf_for(lo)
        while leaf is not None:
            for slot, key in enumerate(leaf.keys):
                if key > hi:
                    return
                if key >= lo:
                    yield (key, leaf.values[slot])
            leaf = leaf.next

    def items(self) -> Iterator[tuple[int, Any]]:
        """All entries in ascending key order."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf: _Leaf | None = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels including the leaf level."""
        return self._height

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ReproError` if broken.

        Verifies global key order across the leaf chain, node fanout
        limits, separator correctness and uniform leaf depth.
        """
        collected = [k for k, _ in self.items()]
        if any(b <= a for a, b in zip(collected, collected[1:])):
            raise ReproError("leaf chain keys are not strictly ascending")
        if len(collected) != self._size:
            raise ReproError(
                f"size mismatch: counted {len(collected)}, stored {self._size}"
            )

        def check(node: Any, depth: int, lo: float, hi: float) -> int:
            if isinstance(node, _Leaf):
                for key in node.keys:
                    if not (lo <= key < hi):
                        raise ReproError(
                            f"leaf key {key} outside separator range "
                            f"[{lo}, {hi})"
                        )
                return depth
            if len(node.children) != len(node.keys) + 1:
                raise ReproError("internal node fanout/key mismatch")
            if len(node.keys) > self._order:
                raise ReproError("internal node overflow")
            bounds = [lo, *node.keys, hi]
            depths = {
                check(child, depth + 1, bounds[i], bounds[i + 1])
                for i, child in enumerate(node.children)
            }
            if len(depths) != 1:
                raise ReproError("leaves at different depths")
            return depths.pop()

        check(self._root, 1, float("-inf"), float("inf"))


def start_position_index(
    starts: list[int], order: int = DEFAULT_ORDER
) -> BPlusTree:
    """B+-tree over element start positions (value = position itself).

    The index PM-Est probes to evaluate ``PMD(S)[v]`` (Section 5.3.1): the
    probe returns 1 when the key is present, else 0.
    """
    return BPlusTree.bulk_load([(s, s) for s in sorted(starts)], order=order)
