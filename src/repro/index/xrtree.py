"""The XR-tree: a paged interval index answering stabbing queries.

Follows Jiang, Lu, Wang and Ooi (ICDE 2003), the index the paper suggests
for IM-DA-Est probes (Section 5.3.1).  Elements are stored in start-sorted
leaf pages under a B+-tree-like router hierarchy; every internal node keeps
a *stab list* of elements whose regions contain ("stab") one of its router
keys.  An element is placed on the stab list of the *highest* such node, so
a root-to-leaf walk guided by the query point visits every stab list that
can contain a matching interval:

* an interval stored in a different leaf than the query point must span a
  router key separating the two leaves, hence sits on a stab list along the
  query path;
* intervals local to the query point's leaf are found by scanning the leaf.

Elements on a stab list are flagged in their leaf so the query never counts
an interval twice.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro import perf
from repro.core.element import Element
from repro.core.errors import ReproError
from repro.core.nodeset import NodeSet

DEFAULT_PAGE_SIZE = 32


class _XRLeaf:
    __slots__ = ("elements", "in_stab_list", "min_key")

    def __init__(self, elements: list[Element]) -> None:
        self.elements = elements
        self.in_stab_list = [False] * len(elements)
        self.min_key = elements[0].start


class _XRInternal:
    __slots__ = ("keys", "children", "stab_list", "min_key")

    def __init__(self, children: list["_XRInternal | _XRLeaf"]) -> None:
        self.children = children
        self.keys = [child.min_key for child in children[1:]]
        self.stab_list: list[Element] = []
        self.min_key = children[0].min_key


class XRTree:
    """Stabbing-query index over a node set's intervals.

    Args:
        node_set: the indexed element set (ancestor operand of a join).
        page_size: elements per leaf page and router fanout (>= 2).
    """

    def __init__(
        self, node_set: NodeSet, page_size: int = DEFAULT_PAGE_SIZE
    ) -> None:
        if page_size < 2:
            raise ReproError(f"page size must be >= 2, got {page_size}")
        self._page_size = page_size
        self._size = len(node_set)
        # Sorted start/end views for the batched count kernel (rank
        # identity); the tree walk remains the per-point reference.
        self._starts = node_set.starts
        self._sorted_ends = node_set.sorted_ends
        self._root: _XRInternal | _XRLeaf | None = None
        if self._size == 0:
            return
        elements = list(node_set.elements)  # already start-sorted
        leaves = [
            _XRLeaf(elements[i : i + page_size])
            for i in range(0, len(elements), page_size)
        ]
        level: list[_XRInternal | _XRLeaf] = list(leaves)
        while len(level) > 1:
            level = [
                _XRInternal(level[i : i + page_size])
                for i in range(0, len(level), page_size)
            ]
        self._root = level[0]
        for leaf in leaves:
            for slot, element in enumerate(leaf.elements):
                if self._try_stab_list(element):
                    leaf.in_stab_list[slot] = True

    def _try_stab_list(self, element: Element) -> bool:
        """Place ``element`` on the highest stab list it stabs, if any."""
        node = self._root
        while isinstance(node, _XRInternal):
            slot = bisect_right(node.keys, element.start)
            # Keys are sorted, so the smallest router key the interval could
            # stab is keys[slot], the first key greater than element.start;
            # the interval stabs some key of this node iff that one is
            # inside the interval.
            if slot < len(node.keys) and node.keys[slot] <= element.end:
                node.stab_list.append(element)
                return True
            node = node.children[slot]
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def stab(self, position: int) -> list[Element]:
        """All indexed elements whose region contains ``position``."""
        result: list[Element] = []
        node = self._root
        if node is None:
            return result
        while isinstance(node, _XRInternal):
            for element in node.stab_list:
                if element.start <= position <= element.end:
                    result.append(element)
            node = node.children[bisect_right(node.keys, position)]
        for slot, element in enumerate(node.elements):
            if element.start > position:
                break
            if not node.in_stab_list[slot] and element.end >= position:
                result.append(element)
        return result

    def stab_count(self, position: int) -> int:
        """Number of indexed elements whose region contains ``position``."""
        return len(self.stab(position))

    def stab_count_many_reference(self, positions: np.ndarray) -> np.ndarray:
        """Per-position tree-walk implementation of
        :meth:`stab_count_many`."""
        return np.array(
            [self.stab_count(int(p)) for p in positions], dtype=np.int64
        )

    def stab_count_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`stab_count` over an array of positions.

        Counting does not need the element lists the tree walk gathers, so
        the batch path answers via the rank identity over the sorted
        start/end views captured at construction — the same semantics the
        tree is validated against (``tests/test_index_batch.py`` asserts
        bit-for-bit agreement with the walk).
        """
        if perf.reference_kernels_enabled():
            return self.stab_count_many_reference(positions)
        started = np.searchsorted(self._starts, positions, side="right")
        ended = np.searchsorted(self._sorted_ends, positions, side="left")
        return (started - ended).astype(np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaf (0 for an empty tree)."""
        levels = 0
        node = self._root
        while node is not None:
            levels += 1
            node = (
                node.children[0] if isinstance(node, _XRInternal) else None
            )
        return levels

    def stab_list_sizes(self) -> list[int]:
        """Sizes of every internal stab list (top-down, left-right)."""
        sizes: list[int] = []
        queue: list[_XRInternal | _XRLeaf] = (
            [self._root] if self._root is not None else []
        )
        while queue:
            node = queue.pop(0)
            if isinstance(node, _XRInternal):
                sizes.append(len(node.stab_list))
                queue.extend(node.children)
        return sizes

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ReproError` if broken.

        Every element must be reachable exactly once: flagged leaf entries
        must appear on exactly one stab list, unflagged ones on none.
        """
        if self._root is None:
            if self._size != 0:
                raise ReproError("empty tree with nonzero size")
            return
        stab_ids: list[int] = []
        leaf_flagged: list[int] = []
        leaf_all: list[int] = []
        queue: list[_XRInternal | _XRLeaf] = [self._root]
        while queue:
            node = queue.pop(0)
            if isinstance(node, _XRInternal):
                stab_ids.extend(id(e) for e in node.stab_list)
                queue.extend(queue_child for queue_child in node.children)
            else:
                for slot, element in enumerate(node.elements):
                    leaf_all.append(id(element))
                    if node.in_stab_list[slot]:
                        leaf_flagged.append(id(element))
        if len(leaf_all) != self._size:
            raise ReproError(
                f"leaves hold {len(leaf_all)} elements, expected {self._size}"
            )
        if len(stab_ids) != len(set(stab_ids)):
            raise ReproError("an element appears on two stab lists")
        if set(stab_ids) != set(leaf_flagged):
            raise ReproError("stab-list flags disagree with stab lists")
