"""Rank-based stabbing-count oracle.

``count(v)`` — the number of intervals of a set containing position ``v`` —
is computable with two binary searches over the sorted start and end codes:
``|{start <= v}| - |{end < v}|``.  This needs no extra structure beyond two
sorted arrays, so it serves both as the fastest probe backend for the
sampling estimators and as the reference implementation the T-tree and
XR-tree are validated against.
"""

from __future__ import annotations

import numpy as np

from repro.core.nodeset import NodeSet


class StabbingCounter:
    """Stabbing counts for a fixed node set in O(log n) per query."""

    def __init__(self, node_set: NodeSet) -> None:
        self._starts = node_set.starts
        self._ends = node_set.sorted_ends

    def count(self, position: int | float) -> int:
        """Number of intervals with ``start <= position <= end``."""
        started = int(np.searchsorted(self._starts, position, side="right"))
        ended = int(np.searchsorted(self._ends, position, side="left"))
        return started - ended

    def count_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`count` over an array of positions."""
        started = np.searchsorted(self._starts, positions, side="right")
        ended = np.searchsorted(self._ends, positions, side="left")
        return (started - ended).astype(np.int64)
