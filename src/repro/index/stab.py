"""Rank-based stabbing-count oracle and start-membership probes.

``count(v)`` — the number of intervals of a set containing position ``v`` —
is computable with two binary searches over the sorted start and end codes:
``|{start <= v}| - |{end < v}|``.  This needs no extra structure beyond two
sorted arrays, so it serves both as the fastest probe backend for the
sampling estimators and as the reference implementation the T-tree and
XR-tree are validated against.

The module also hosts the *start-membership* kernel ``PMD(S)[v]`` — is some
element starting exactly at ``v``? — probed by PM-Est and bifocal sampling.
The batched entry points (:meth:`StabbingCounter.count_many`,
:func:`start_membership_many`) are numpy bulk operations; the per-element
loops are retained as ``*_reference`` implementations (the B+-tree probe in
the membership case), re-selected package-wide by
:func:`repro.perf.reference_kernels` and asserted bit-for-bit equal by the
property suite (``tests/test_index_batch.py``).
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.core.nodeset import NodeSet


class StabbingCounter:
    """Stabbing counts for a fixed node set in O(log n) per query."""

    def __init__(self, node_set: NodeSet) -> None:
        self._starts = node_set.starts
        self._ends = node_set.sorted_ends

    def count(self, position: int | float) -> int:
        """Number of intervals with ``start <= position <= end``."""
        started = int(np.searchsorted(self._starts, position, side="right"))
        ended = int(np.searchsorted(self._ends, position, side="left"))
        return started - ended

    def count_many_reference(self, positions: np.ndarray) -> np.ndarray:
        """Per-element loop implementation of :meth:`count_many`."""
        return np.array(
            [self.count(int(p)) for p in positions], dtype=np.int64
        )

    def count_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`count` over an array of positions."""
        if perf.reference_kernels_enabled():
            return self.count_many_reference(positions)
        started = np.searchsorted(self._starts, positions, side="right")
        ended = np.searchsorted(self._ends, positions, side="left")
        return (started - ended).astype(np.int64)


def start_membership_many_reference(
    starts: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Per-position B+-tree probe implementation of
    :func:`start_membership_many`.

    Builds the Section 5.3.1 start-position B+-tree and probes it with a
    membership test per position — the original PM-Est probe, retained as
    the semantics of record.
    """
    from repro.index.bplus import start_position_index

    index = start_position_index([int(s) for s in starts])
    return np.array(
        [1 if int(v) in index else 0 for v in positions], dtype=np.int64
    )


def start_membership_many(
    starts: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """``PMD[v]`` for every ``v`` in ``positions``: 1 when some element
    starts exactly at ``v``, else 0.

    ``starts`` must be ascending (``NodeSet.starts`` is); region codes are
    distinct so the count never exceeds 1.  One ``searchsorted`` plus an
    equality check — no index construction at all.
    """
    if perf.reference_kernels_enabled():
        return start_membership_many_reference(starts, positions)
    if len(starts) == 0:
        return np.zeros(len(positions), dtype=np.int64)
    slots = np.searchsorted(starts, positions, side="left")
    slots[slots == len(starts)] = len(starts) - 1
    return (starts[slots] == positions).astype(np.int64)
