"""Index structures used to accelerate estimator probes (Section 5.3.1).

* :mod:`repro.index.bplus` — an in-memory B+-tree (point, floor and range
  lookups) used as the backbone of the T-tree and as a start-position index.
* :mod:`repro.index.ttree` — the T-tree: a B+-tree over the turning points
  of a covering table ``PMA``, answering stabbing-count queries.
* :mod:`repro.index.xrtree` — the XR-tree: a paged interval index with
  internal stab lists answering stabbing queries (which intervals contain a
  point), following Jiang et al. (ICDE 2003).
* :mod:`repro.index.stab` — the rank-based stabbing-count oracle every other
  structure is validated against.
"""

from repro.index.bplus import BPlusTree
from repro.index.stab import StabbingCounter, start_membership_many
from repro.index.ttree import TTree
from repro.index.xrtree import XRTree

__all__ = [
    "BPlusTree",
    "StabbingCounter",
    "TTree",
    "XRTree",
    "start_membership_many",
]
