"""The T-tree: a B+-tree over the turning points of a covering table.

Section 5.3.1 / Figure 4 of the paper: instead of storing the whole
``PMA(S)`` table, index every *turning point* ``K`` (a position where
``PMA(S)[K] != PMA(S)[K-1]``) together with ``PMA(S)[K]`` in a B+-tree.
``PMA`` is constant between adjacent turning points, so a floor lookup
("largest key <= q") answers the stabbing-count query exactly.  There are
O(|S|) turning points.
"""

from __future__ import annotations

from repro.core.nodeset import NodeSet
from repro.index.bplus import DEFAULT_ORDER, BPlusTree
from repro.models.position import turning_points


class TTree:
    """Stabbing-count index over a node set's covering table.

    >>> from repro.xmltree import DataTree
    >>> tree = DataTree.from_nested(("a", [("a", []), ("a", [])]))
    >>> ttree = TTree(tree.node_set("a"))
    >>> ttree.count(tree.element(1).start)
    2
    """

    def __init__(self, node_set: NodeSet, order: int = DEFAULT_ORDER) -> None:
        points = turning_points(node_set)
        self._tree = BPlusTree.bulk_load(points, order=order)
        self._first_key = points[0][0] if points else None

    @property
    def turning_point_count(self) -> int:
        """Number of indexed turning points (O(|S|) by construction)."""
        return len(self._tree)

    @property
    def bplus(self) -> BPlusTree:
        """The underlying B+-tree (exposed for inspection and tests)."""
        return self._tree

    def count(self, position: int) -> int:
        """``PMA(S)[position]``: intervals covering integer ``position``.

        Positions before the first turning point are covered by nothing.
        """
        if self._first_key is None or position < self._first_key:
            return 0
        entry = self._tree.floor_entry(position)
        assert entry is not None  # guarded by the _first_key check
        return entry[1]
