"""The T-tree: a B+-tree over the turning points of a covering table.

Section 5.3.1 / Figure 4 of the paper: instead of storing the whole
``PMA(S)`` table, index every *turning point* ``K`` (a position where
``PMA(S)[K] != PMA(S)[K-1]``) together with ``PMA(S)[K]`` in a B+-tree.
``PMA`` is constant between adjacent turning points, so a floor lookup
("largest key <= q") answers the stabbing-count query exactly.  There are
O(|S|) turning points.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.core.nodeset import NodeSet
from repro.index.bplus import DEFAULT_ORDER, BPlusTree


class TTree:
    """Stabbing-count index over a node set's covering table.

    >>> from repro.xmltree import DataTree
    >>> tree = DataTree.from_nested(("a", [("a", []), ("a", [])]))
    >>> ttree = TTree(tree.node_set("a"))
    >>> ttree.count(tree.element(1).start)
    2
    """

    def __init__(self, node_set: NodeSet, order: int = DEFAULT_ORDER) -> None:
        # Flat sorted views of the turning points for batched probes: a
        # floor lookup over the B+-tree and a searchsorted over these
        # arrays answer the same query.  The arrays are the node set's
        # cached ones, shared with every other turning-point consumer.
        keys, values = node_set.turning_points_arrays
        self._point_keys = keys
        self._point_values = values
        points = list(zip(keys.tolist(), values.tolist()))
        self._tree = BPlusTree.bulk_load(points, order=order)
        self._first_key = points[0][0] if points else None

    @property
    def turning_point_count(self) -> int:
        """Number of indexed turning points (O(|S|) by construction)."""
        return len(self._tree)

    @property
    def bplus(self) -> BPlusTree:
        """The underlying B+-tree (exposed for inspection and tests)."""
        return self._tree

    def count(self, position: int) -> int:
        """``PMA(S)[position]``: intervals covering integer ``position``.

        Positions before the first turning point are covered by nothing.
        """
        if self._first_key is None or position < self._first_key:
            return 0
        entry = self._tree.floor_entry(position)
        assert entry is not None  # guarded by the _first_key check
        return entry[1]

    def count_many_reference(self, positions: np.ndarray) -> np.ndarray:
        """Per-position B+-tree floor-lookup implementation of
        :meth:`count_many`."""
        return np.array(
            [self.count(int(p)) for p in positions], dtype=np.int64
        )

    def count_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`count` over an array of positions.

        ``PMA`` is constant between adjacent turning points, so the floor
        entry for every position is one ``searchsorted`` over the sorted
        turning-point keys; positions before the first key count 0.
        """
        if perf.reference_kernels_enabled():
            return self.count_many_reference(positions)
        if self._first_key is None:
            return np.zeros(len(positions), dtype=np.int64)
        slots = np.searchsorted(self._point_keys, positions, side="right")
        counts = self._point_values[np.maximum(slots - 1, 0)]
        return np.where(slots == 0, 0, counts).astype(np.int64)
