"""Fused probe pipelines: index_build → probe → scale in one pass.

Each function here is the full probe body of one sampling estimator,
expressed over :class:`~repro.kernels.arena.OperandArena` views and
dispatched to the active kernel backend
(:func:`repro.kernels.backend.set_kernel_backend`).  The estimators keep
ownership of sample *drawing* (the RNG streams are part of the public
contract) and of *scaling* aggregates into :class:`Estimate` objects;
everything in between — operand layout, index acquisition, probing,
per-trial reduction — happens here, with no intermediate arrays handed
back across the boundary.

Three operand tiers, fastest first:

1. **stab-count table** (cache present, probe points drawn from the
   descendant start array): the probe is a pure gather —
   :func:`repro.kernels.arena.stab_count_table`;
2. **direct arena kernels** (no cache): searchsorted rank identity or
   turning-point floor lookup straight off the arena views, no index
   object built at all;
3. **reference composition** (:func:`repro.perf.reference_kernels`):
   the original per-call build of the paper's index structure followed
   by its ``*_reference`` probe loop, byte-identical to the
   pre-fusion code path — this is the semantics of record the parity
   suite holds every backend to.

All aggregates are integer arithmetic, so every tier returns bit-for-bit
identical values; only the time changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro import perf
from repro.core.nodeset import NodeSet
from repro.kernels import _numpy
from repro.kernels import backend as _backend
from repro.kernels.arena import operand_arena, stab_count_table
from repro.obs import runtime as _obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.perf.index_cache import IndexCache


def _impl():
    """The kernel module to dispatch to.

    Reference mode pins the numpy module so reference benchmark numbers
    never depend on which compiled backend happens to be active.
    """
    if perf.reference_kernels_enabled():
        return _numpy
    return _backend.active_impl()


def _reference_index(ancestors: NodeSet, probe_backend: str):
    """Fresh per-call index object, as the pre-fusion code built it."""
    if probe_backend == "ttree":
        from repro.index.ttree import TTree

        return TTree(ancestors)
    if probe_backend == "xrtree":
        from repro.index.xrtree import XRTree

        return XRTree(ancestors)
    from repro.index.stab import StabbingCounter

    return StabbingCounter(ancestors)


def stab_sum_max(
    ancestors: NodeSet,
    descendants: NodeSet,
    indices: np.ndarray,
    rows: int,
    m: int,
    *,
    probe_backend: str,
    cache: "IndexCache | None",
    name: str,
) -> tuple[np.ndarray, np.ndarray]:
    """IM-DA-Est probe: per-trial ``(Σ count, max count)`` of the stab
    counts of ``descendants.starts[indices]`` against ``ancestors``.

    ``indices`` is the row-major flattening of a ``rows × m`` draw
    matrix.  With a cache the stab-count table turns the whole probe
    into one gather regardless of ``probe_backend`` — all three probe
    structures answer the identical query, so the table serves them all.
    """
    if m == 0:
        zeros = np.zeros(rows, dtype=np.int64)
        return zeros, np.zeros(rows, dtype=np.int64)
    if perf.reference_kernels_enabled():
        points = descendants.starts[indices]
        with _obs.phase_timer(name, "index_build"):
            index = _reference_index(ancestors, probe_backend)
        with _obs.phase_timer(name, "probe"):
            if probe_backend == "xrtree":
                counts = index.stab_count_many(points)
            else:
                counts = index.count_many(points)
        matrix = counts.reshape(rows, m)
        return matrix.sum(axis=1), matrix.max(axis=1)
    impl = _impl()
    if cache is not None:
        with _obs.phase_timer(name, "index_build"):
            table = stab_count_table(ancestors, descendants, cache)
        with _obs.phase_timer(name, "probe"):
            return impl.gather_sum_max(table, indices, rows, m)
    with _obs.phase_timer(name, "index_build"):
        arena = operand_arena(ancestors)
        if probe_backend == "ttree":
            tp_keys, tp_padded = arena.turning_points()
    with _obs.phase_timer(name, "probe"):
        points = descendants.starts[indices]
        if probe_backend == "ttree":
            return impl.ttree_sum_max(tp_keys, tp_padded, points, rows, m)
        # "rank" and "xrtree" both probe the rank identity in batch.
        return impl.stab_sum_max(
            arena.starts, arena.sorted_ends, points, rows, m
        )


def stab_positive(
    ancestors: NodeSet,
    descendants: NodeSet,
    indices: np.ndarray,
    rows: int,
    m: int,
    *,
    cache: "IndexCache | None",
    name: str,
) -> np.ndarray:
    """SEMI-D probe: per-trial count of sampled descendants with at
    least one ancestor."""
    if m == 0:
        return np.zeros(rows, dtype=np.int64)
    if perf.reference_kernels_enabled():
        from repro.index.stab import StabbingCounter

        points = descendants.starts[indices]
        with _obs.phase_timer(name, "index_build"):
            counter = StabbingCounter(ancestors)
        with _obs.phase_timer(name, "probe"):
            counts = counter.count_many(points).reshape(rows, m)
        return (counts > 0).sum(axis=1, dtype=np.int64)
    impl = _impl()
    if cache is not None:
        with _obs.phase_timer(name, "index_build"):
            table = stab_count_table(ancestors, descendants, cache)
        with _obs.phase_timer(name, "probe"):
            return impl.gather_positive(table, indices, rows, m)
    with _obs.phase_timer(name, "index_build"):
        arena = operand_arena(ancestors)
    with _obs.phase_timer(name, "probe"):
        points = descendants.starts[indices]
        return impl.stab_positive(
            arena.starts, arena.sorted_ends, points, rows, m
        )


def stab_segment_sums(
    ancestors: NodeSet,
    descendants: NodeSet,
    indices: np.ndarray,
    offsets: np.ndarray,
    *,
    cache: "IndexCache | None",
    name: str,
) -> np.ndarray:
    """SYS probe: per-trial sums of stab counts over ragged index rows.

    ``offsets[i]`` is the position in ``indices`` where trial ``i``'s
    (systematic, data-dependent-length) row begins.
    """
    if indices.shape[0] == 0:
        return np.zeros(offsets.shape[0], dtype=np.int64)
    if perf.reference_kernels_enabled():
        from repro.index.stab import StabbingCounter

        points = descendants.starts[indices]
        with _obs.phase_timer(name, "index_build"):
            counter = StabbingCounter(ancestors)
        with _obs.phase_timer(name, "probe"):
            counts = counter.count_many(points)
        return np.add.reduceat(counts, offsets)
    impl = _impl()
    if cache is not None:
        with _obs.phase_timer(name, "index_build"):
            table = stab_count_table(ancestors, descendants, cache)
        with _obs.phase_timer(name, "probe"):
            return impl.gather_segment_sums(table, indices, offsets)
    with _obs.phase_timer(name, "index_build"):
        arena = operand_arena(ancestors)
    with _obs.phase_timer(name, "probe"):
        points = descendants.starts[indices]
        return impl.segment_sums(
            arena.starts, arena.sorted_ends, points, offsets
        )


def pm_dot_hits(
    ancestors: NodeSet,
    descendants: NodeSet,
    positions: np.ndarray,
    rows: int,
    m: int,
    *,
    probe_backend: str,
    cache: "IndexCache | None",
    name: str,
) -> tuple[np.ndarray, np.ndarray]:
    """PM-Est probe: per-trial ``(Σ PMA·PMD, Σ PMD)`` over sampled
    workspace positions.

    Positions are uniform workspace draws, not descendant starts, so
    there is no table tier — the arena kernels are the fast path.
    """
    if perf.reference_kernels_enabled():
        from repro.index.stab import start_membership_many

        with _obs.phase_timer(name, "index_build"):
            index = _reference_index(ancestors, probe_backend)
        with _obs.phase_timer(name, "probe"):
            pma = index.count_many(positions).reshape(rows, m)
            pmd = start_membership_many(
                descendants.starts, positions
            ).reshape(rows, m)
        return (pma * pmd).sum(axis=1), pmd.sum(axis=1)
    impl = _impl()
    with _obs.phase_timer(name, "index_build"):
        arena = operand_arena(ancestors, cache)
        if probe_backend == "ttree":
            tp_keys, tp_padded = arena.turning_points()
    with _obs.phase_timer(name, "probe"):
        if probe_backend == "ttree":
            return impl.pm_dot_hits_ttree(
                tp_keys, tp_padded, descendants.starts, positions, rows, m
            )
        return impl.pm_dot_hits_rank(
            arena.starts,
            arena.sorted_ends,
            descendants.starts,
            positions,
            rows,
            m,
        )


def bifocal_sparse_dots(
    ancestors: NodeSet,
    descendants: NodeSet,
    positions: np.ndarray,
    rows: int,
    m: int,
    threshold: int,
    *,
    cache: "IndexCache | None",
    name: str,
) -> np.ndarray:
    """Bifocal sparse-part probe: per-trial ``Σ PMA·PMD`` restricted to
    positions with ``PMA < threshold``."""
    if perf.reference_kernels_enabled():
        from repro.index.stab import StabbingCounter, start_membership_many

        with _obs.phase_timer(name, "index_build"):
            counter = StabbingCounter(ancestors)
        with _obs.phase_timer(name, "probe"):
            pma = counter.count_many(positions).reshape(rows, m)
            pmd = start_membership_many(
                descendants.starts, positions
            ).reshape(rows, m)
        return (pma * (pma < threshold) * pmd).sum(axis=1)
    impl = _impl()
    with _obs.phase_timer(name, "index_build"):
        arena = operand_arena(ancestors, cache)
    with _obs.phase_timer(name, "probe"):
        return impl.bifocal_dots(
            arena.starts,
            arena.sorted_ends,
            descendants.starts,
            positions,
            rows,
            m,
            threshold,
        )


def cross_hits(
    ancestors: NodeSet,
    descendants: NodeSet,
    a_indices: np.ndarray,
    d_indices: np.ndarray,
    rows: int,
    m: int,
    *,
    name: str,
) -> np.ndarray:
    """CROSS probe: per-trial count of sampled (a, d) pairs joining."""
    impl = _impl()
    with _obs.phase_timer(name, "probe"):
        arena = operand_arena(ancestors)
        a_starts = arena.starts[a_indices]
        a_ends = arena.ends[a_indices]
        d_starts = descendants.starts[d_indices]
        return impl.cross_hits(a_starts, a_ends, d_starts, rows, m)


def span_hits(
    ancestors: NodeSet,
    descendants: NodeSet,
    indices: np.ndarray,
    rows: int,
    m: int,
    *,
    name: str,
) -> np.ndarray:
    """SEMI-A probe: per-trial count of sampled ancestors containing at
    least one descendant start."""
    impl = _impl()
    with _obs.phase_timer(name, "probe"):
        arena = operand_arena(ancestors)
        sample_starts = arena.starts[indices]
        sample_ends = arena.ends[indices]
        return impl.span_hits(
            descendants.starts, sample_starts, sample_ends, rows, m
        )
