"""Numpy implementations of the fused probe kernels.

Each function is one *fused* pass for one estimator's probe+scale body:
it takes the SoA operand arrays plus the (trials × m) sample layout and
returns the per-trial integer aggregates the estimator scales into
estimates.  Fusion here means no intermediate materialization beyond
what numpy's call convention forces: searchsorted outputs are reduced
in place, row reductions write into preallocated outputs, and the bool
masks the old per-phase path materialized (then copied via ``astype``)
never exist.

Every aggregate is integer arithmetic (sums, maxes, 0/1 dots), so these
functions are bit-for-bit equal to the per-phase compositions they
replace — the property suite and the ``fused-vs-reference`` qa oracle
assert it against the retained ``*_reference`` loops.
"""

from __future__ import annotations

import numpy as np

NAME = "numpy"


def _row_sum_max(
    counts: np.ndarray, rows: int, m: int
) -> tuple[np.ndarray, np.ndarray]:
    matrix = counts.reshape(rows, m)
    sums = np.empty(rows, dtype=np.int64)
    maxes = np.empty(rows, dtype=np.int64)
    matrix.sum(axis=1, out=sums)
    matrix.max(axis=1, out=maxes)
    return sums, maxes


def stab_sum_max(
    starts: np.ndarray,
    sorted_ends: np.ndarray,
    points: np.ndarray,
    rows: int,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Rank-identity stab counts of ``points``, reduced per trial row."""
    counts = np.searchsorted(starts, points, side="right")
    ended = np.searchsorted(sorted_ends, points, side="left")
    counts -= ended
    return _row_sum_max(counts, rows, m)


def ttree_sum_max(
    tp_keys: np.ndarray,
    tp_padded_values: np.ndarray,
    points: np.ndarray,
    rows: int,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """T-tree floor-lookup stab counts, reduced per trial row.

    ``tp_padded_values`` carries a leading 0, so ``searchsorted`` slots
    index it directly — no before-first-key mask.
    """
    slots = np.searchsorted(tp_keys, points, side="right")
    counts = tp_padded_values[slots]
    return _row_sum_max(counts, rows, m)


def gather_sum_max(
    table: np.ndarray, indices: np.ndarray, rows: int, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stab counts via the precomputed table: one gather, two reductions."""
    counts = table[indices]
    return _row_sum_max(counts, rows, m)


def stab_positive(
    starts: np.ndarray,
    sorted_ends: np.ndarray,
    points: np.ndarray,
    rows: int,
    m: int,
) -> np.ndarray:
    """Per-row count of points with a positive stab count (SEMI-D)."""
    counts = np.searchsorted(starts, points, side="right")
    ended = np.searchsorted(sorted_ends, points, side="left")
    counts -= ended
    hits = np.empty(rows, dtype=np.int64)
    (counts.reshape(rows, m) > 0).sum(axis=1, dtype=np.int64, out=hits)
    return hits


def gather_positive(
    table: np.ndarray, indices: np.ndarray, rows: int, m: int
) -> np.ndarray:
    """Table-gather variant of :func:`stab_positive`."""
    hits = np.empty(rows, dtype=np.int64)
    (table[indices].reshape(rows, m) > 0).sum(
        axis=1, dtype=np.int64, out=hits
    )
    return hits


def segment_sums(
    starts: np.ndarray,
    sorted_ends: np.ndarray,
    points: np.ndarray,
    offsets: np.ndarray,
) -> np.ndarray:
    """Ragged per-trial sums of stab counts (SYS's strided rows).

    ``offsets`` are the row start indices into the concatenated
    ``points``; every segment is non-empty (the systematic stride never
    exceeds the population), which is what makes ``reduceat`` exactly
    the per-segment sum.
    """
    counts = np.searchsorted(starts, points, side="right")
    ended = np.searchsorted(sorted_ends, points, side="left")
    counts -= ended
    return np.add.reduceat(counts, offsets)


def gather_segment_sums(
    table: np.ndarray, indices: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Table-gather variant of :func:`segment_sums`."""
    return np.add.reduceat(table[indices], offsets)


def membership(starts: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """0/1 start membership of each position (``PMD[v]``), int64."""
    if starts.shape[0] == 0:
        return np.zeros(positions.shape[0], dtype=np.int64)
    slots = np.searchsorted(starts, positions, side="left")
    np.minimum(slots, starts.shape[0] - 1, out=slots)
    return (starts[slots] == positions).astype(np.int64)


def _dot_hits(
    pma: np.ndarray, pmd: np.ndarray, rows: int, m: int
) -> tuple[np.ndarray, np.ndarray]:
    pma *= pmd  # pmd is 0/1: zero out non-member positions in place
    dots = np.empty(rows, dtype=np.int64)
    hits = np.empty(rows, dtype=np.int64)
    pma.reshape(rows, m).sum(axis=1, out=dots)
    pmd.reshape(rows, m).sum(axis=1, out=hits)
    return dots, hits


def pm_dot_hits_rank(
    a_starts: np.ndarray,
    a_sorted_ends: np.ndarray,
    d_starts: np.ndarray,
    positions: np.ndarray,
    rows: int,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """PM-Est with the rank backend: per-row ``(Σ pma·pmd, Σ pmd)``."""
    pma = np.searchsorted(a_starts, positions, side="right")
    ended = np.searchsorted(a_sorted_ends, positions, side="left")
    pma -= ended
    pmd = membership(d_starts, positions)
    return _dot_hits(pma, pmd, rows, m)


def pm_dot_hits_ttree(
    tp_keys: np.ndarray,
    tp_padded_values: np.ndarray,
    d_starts: np.ndarray,
    positions: np.ndarray,
    rows: int,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """PM-Est with the T-tree backend."""
    slots = np.searchsorted(tp_keys, positions, side="right")
    pma = tp_padded_values[slots]  # fancy indexing: already a fresh array
    pmd = membership(d_starts, positions)
    return _dot_hits(pma, pmd, rows, m)


def bifocal_dots(
    a_starts: np.ndarray,
    a_sorted_ends: np.ndarray,
    d_starts: np.ndarray,
    positions: np.ndarray,
    rows: int,
    m: int,
    threshold: int,
) -> np.ndarray:
    """Bifocal's sparse-part dots: ``Σ pma·pmd`` over ``pma < τ``."""
    pma = np.searchsorted(a_starts, positions, side="right")
    ended = np.searchsorted(a_sorted_ends, positions, side="left")
    pma -= ended
    pma[pma >= threshold] = 0  # dense positions contribute zero
    pmd = membership(d_starts, positions)
    pma *= pmd
    dots = np.empty(rows, dtype=np.int64)
    pma.reshape(rows, m).sum(axis=1, out=dots)
    return dots


def cross_hits(
    a_starts: np.ndarray,
    a_ends: np.ndarray,
    d_starts: np.ndarray,
    rows: int,
    m: int,
) -> np.ndarray:
    """Per-row count of sampled (a, d) pairs with containment."""
    flags = a_starts < d_starts
    flags &= d_starts < a_ends
    hits = np.empty(rows, dtype=np.int64)
    flags.reshape(rows, m).sum(axis=1, dtype=np.int64, out=hits)
    return hits


def span_hits(
    d_starts: np.ndarray,
    sample_starts: np.ndarray,
    sample_ends: np.ndarray,
    rows: int,
    m: int,
) -> np.ndarray:
    """Per-row count of sampled ancestors containing some d-start
    (SEMI-A): a hit when a descendant start lies strictly inside."""
    first_inside = np.searchsorted(d_starts, sample_starts, side="right")
    first_beyond = np.searchsorted(d_starts, sample_ends, side="left")
    flags = first_beyond > first_inside
    hits = np.empty(rows, dtype=np.int64)
    flags.reshape(rows, m).sum(axis=1, dtype=np.int64, out=hits)
    return hits
