"""Kernel backend registry: numpy always, numba when importable.

The fused probe kernels (:mod:`repro.kernels.fused`) dispatch through
this registry.  ``"numpy"`` is the baseline backend and is always
present; ``"numba"`` registers itself only when the package imports
cleanly — it is a *soft* dependency, deliberately absent from the
project requirements.  Selecting an unavailable backend is not an
error: :func:`set_kernel_backend` falls back to numpy silently and
reports what it actually activated, so code written against the numba
backend runs unchanged (and bit-for-bit identically — the parity suite
asserts it) on a numpy-only install.

The active backend is process-global, like
:func:`repro.perf.reference_kernels`'s mode flag, because the kernels
it selects are pure functions of their array arguments: switching
backends can never change a result, only its speed.  The environment
variable ``REPRO_KERNEL_BACKEND`` selects the initial backend (the CI
numba leg sets it) with the same silent-fallback semantics.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from types import ModuleType
from typing import Iterator

from repro.core.errors import ReproError

#: Backends this module knows how to load, in preference order.
KNOWN_BACKENDS = ("numpy", "numba")

_lock = threading.Lock()
_active = "numpy"
_impls: dict[str, ModuleType | None] = {}


def _load(name: str) -> ModuleType | None:
    """The implementation module for ``name``, or None if unavailable."""
    if name in _impls:
        return _impls[name]
    impl: ModuleType | None
    if name == "numpy":
        from repro.kernels import _numpy as impl
    else:
        try:
            from repro.kernels import _numba as impl
        except Exception:
            impl = None
    _impls[name] = impl
    return impl


def available_backends() -> tuple[str, ...]:
    """Backends that can actually execute on this install."""
    return tuple(name for name in KNOWN_BACKENDS if _load(name) is not None)


def kernel_backend() -> str:
    """Name of the active kernel backend."""
    return _active


def set_kernel_backend(name: str) -> str:
    """Select the kernel backend; returns the backend actually active.

    Unknown names raise :class:`~repro.core.errors.ReproError`.  A known
    but unavailable backend (numba not installed) falls back to numpy
    silently — the soft-dependency contract: behavior never changes,
    only speed.
    """
    if name not in KNOWN_BACKENDS:
        raise ReproError(
            f"unknown kernel backend {name!r} "
            f"(expected one of {KNOWN_BACKENDS})"
        )
    global _active
    with _lock:
        _active = name if _load(name) is not None else "numpy"
        return _active


@contextmanager
def use_kernel_backend(name: str) -> Iterator[str]:
    """Run the block under ``name`` (with fallback), then restore."""
    previous = _active
    try:
        yield set_kernel_backend(name)
    finally:
        set_kernel_backend(previous)


def active_impl() -> ModuleType:
    """The implementation module of the active backend."""
    impl = _load(_active)
    if impl is None:  # pragma: no cover - set_kernel_backend prevents it
        impl = _load("numpy")
    assert impl is not None
    return impl


# Honor REPRO_KERNEL_BACKEND at import: the CI numba leg exports it so
# the whole suite (and the bench gates) run under the compiled backend
# without touching any call site.
_env_backend = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower()
if _env_backend and _env_backend in KNOWN_BACKENDS:
    set_kernel_backend(_env_backend)
