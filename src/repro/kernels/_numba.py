"""Numba implementations of the fused probe kernels.

Importing this module raises when numba is absent — the backend
registry treats that as "backend unavailable" and stays on numpy (the
soft-dependency contract; nothing in the package requires numba).

Every kernel is a genuinely single-pass ``@njit`` loop: binary search,
count and aggregate per sample point with no temporaries at all, which
is the shape the numpy backend can only approximate.  All arithmetic is
int64, so results are bit-for-bit identical to the numpy backend and to
the ``*_reference`` loops — the parity suite runs under both backends
(the CI numba leg sets ``REPRO_KERNEL_BACKEND=numba``).

Functions are compiled lazily on first call (numba's default), so
selecting the backend costs nothing until a kernel actually runs.
"""

from __future__ import annotations

import numpy as np
import numba
from numba import njit

NAME = "numba"

#: Re-exported so tests can assert which compiled module is active.
AVAILABLE = True

__all__ = ["NAME", "AVAILABLE", "numba"]

_jit = njit(cache=False, nogil=True)


@_jit
def _count_right(a: np.ndarray, x: int) -> int:
    """``|{i : a[i] <= x}|`` for ascending ``a`` (bisect_right)."""
    lo, hi = 0, a.shape[0]
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] <= x:
            lo = mid + 1
        else:
            hi = mid
    return lo


@_jit
def _count_left(a: np.ndarray, x: int) -> int:
    """``|{i : a[i] < x}|`` for ascending ``a`` (bisect_left)."""
    lo, hi = 0, a.shape[0]
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


@_jit
def stab_sum_max(starts, sorted_ends, points, rows, m):
    sums = np.zeros(rows, dtype=np.int64)
    maxes = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        best = np.int64(-(2**63))
        total = np.int64(0)
        for j in range(m):
            p = points[base + j]
            c = _count_right(starts, p) - _count_left(sorted_ends, p)
            total += c
            if c > best:
                best = c
        sums[r] = total
        maxes[r] = best
    return sums, maxes


@_jit
def ttree_sum_max(tp_keys, tp_padded_values, points, rows, m):
    sums = np.zeros(rows, dtype=np.int64)
    maxes = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        best = np.int64(-(2**63))
        total = np.int64(0)
        for j in range(m):
            c = tp_padded_values[_count_right(tp_keys, points[base + j])]
            total += c
            if c > best:
                best = c
        sums[r] = total
        maxes[r] = best
    return sums, maxes


@_jit
def gather_sum_max(table, indices, rows, m):
    sums = np.zeros(rows, dtype=np.int64)
    maxes = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        best = np.int64(-(2**63))
        total = np.int64(0)
        for j in range(m):
            c = table[indices[base + j]]
            total += c
            if c > best:
                best = c
        sums[r] = total
        maxes[r] = best
    return sums, maxes


@_jit
def stab_positive(starts, sorted_ends, points, rows, m):
    hits = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        count = np.int64(0)
        for j in range(m):
            p = points[base + j]
            if _count_right(starts, p) - _count_left(sorted_ends, p) > 0:
                count += 1
        hits[r] = count
    return hits


@_jit
def gather_positive(table, indices, rows, m):
    hits = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        count = np.int64(0)
        for j in range(m):
            if table[indices[base + j]] > 0:
                count += 1
        hits[r] = count
    return hits


@_jit
def segment_sums(starts, sorted_ends, points, offsets):
    rows = offsets.shape[0]
    n = points.shape[0]
    sums = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        stop = offsets[r + 1] if r + 1 < rows else n
        total = np.int64(0)
        for j in range(offsets[r], stop):
            p = points[j]
            total += _count_right(starts, p) - _count_left(sorted_ends, p)
        sums[r] = total
    return sums


@_jit
def gather_segment_sums(table, indices, offsets):
    rows = offsets.shape[0]
    n = indices.shape[0]
    sums = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        stop = offsets[r + 1] if r + 1 < rows else n
        total = np.int64(0)
        for j in range(offsets[r], stop):
            total += table[indices[j]]
        sums[r] = total
    return sums


@_jit
def _is_member(starts, p):
    n = starts.shape[0]
    if n == 0:
        return np.int64(0)
    slot = _count_left(starts, p)
    if slot >= n:
        slot = n - 1
    return np.int64(1) if starts[slot] == p else np.int64(0)


@_jit
def pm_dot_hits_rank(a_starts, a_sorted_ends, d_starts, positions, rows, m):
    dots = np.zeros(rows, dtype=np.int64)
    hits = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        dot = np.int64(0)
        hit = np.int64(0)
        for j in range(m):
            p = positions[base + j]
            pmd = _is_member(d_starts, p)
            if pmd:
                dot += _count_right(a_starts, p) - _count_left(
                    a_sorted_ends, p
                )
                hit += 1
        dots[r] = dot
        hits[r] = hit
    return dots, hits


@_jit
def pm_dot_hits_ttree(
    tp_keys, tp_padded_values, d_starts, positions, rows, m
):
    dots = np.zeros(rows, dtype=np.int64)
    hits = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        dot = np.int64(0)
        hit = np.int64(0)
        for j in range(m):
            p = positions[base + j]
            pmd = _is_member(d_starts, p)
            if pmd:
                dot += tp_padded_values[_count_right(tp_keys, p)]
                hit += 1
        dots[r] = dot
        hits[r] = hit
    return dots, hits


@_jit
def bifocal_dots(
    a_starts, a_sorted_ends, d_starts, positions, rows, m, threshold
):
    dots = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        dot = np.int64(0)
        for j in range(m):
            p = positions[base + j]
            if _is_member(d_starts, p):
                pma = _count_right(a_starts, p) - _count_left(
                    a_sorted_ends, p
                )
                if pma < threshold:
                    dot += pma
        dots[r] = dot
    return dots


@_jit
def cross_hits(a_starts, a_ends, d_starts, rows, m):
    hits = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        count = np.int64(0)
        for j in range(m):
            k = base + j
            if a_starts[k] < d_starts[k] and d_starts[k] < a_ends[k]:
                count += 1
        hits[r] = count
    return hits


@_jit
def span_hits(d_starts, sample_starts, sample_ends, rows, m):
    hits = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        base = r * m
        count = np.int64(0)
        for j in range(m):
            k = base + j
            first_inside = _count_right(d_starts, sample_starts[k])
            first_beyond = _count_left(d_starts, sample_ends[k])
            if first_beyond > first_inside:
                count += 1
        hits[r] = count
    return hits


def membership(starts: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """0/1 start membership — numpy form kept for the shared API."""
    from repro.kernels import _numpy

    return _numpy.membership(starts, positions)
