"""Operand arenas: the structure-of-arrays layout behind every probe.

An :class:`OperandArena` gathers, per node set, every derived array the
fused probe kernels consume — start codes, end codes, sorted end codes,
turning-point keys and (zero-padded) turning-point values — behind one
object with one field-naming convention.  The field names are exactly
the :class:`~repro.shard.arena.ShardArena` publication layout
(:data:`OPERAND_FIELDS`), so the local hot path and the multi-process
scatter path share a single SoA format: what a worker attaches from
shared memory is what a local kernel reads from the arena.

Arenas are cheap views, not copies: every array is the node set's own
cached view (:attr:`NodeSet.starts`, :attr:`NodeSet.sorted_ends`,
:attr:`NodeSet.turning_points_arrays`), materialized lazily, so an
arena costs nothing until a kernel touches a field.  Content-keyed
sharing happens at two levels:

* **object level** — without a cache, :func:`operand_arena` memoizes
  the arena on the node set itself, so every estimator probing the same
  object reuses one arena;
* **content level** — with an :class:`~repro.perf.IndexCache`, the
  arena is a cache entry under ``("arena", fingerprint)``: distinct
  NodeSet objects with equal content (service requests, shard clones)
  share one arena, with the cache's byte accounting and obs counters.

The arena also hosts the *stab-count table*: the stabbing counts of
every descendant start against an ancestor set, keyed by both operand
fingerprints.  IM/SYS/SEMI-D probe points are always gathered from the
descendant start array, so with the table warm a probe is a pure table
gather — no binary search at all.  See :mod:`repro.kernels.fused`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.nodeset import NodeSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.perf.index_cache import IndexCache

#: Canonical SoA field order, shared with the shard publication layout
#: (``repro.shard.pool`` publishes exactly these into its arenas).
OPERAND_FIELDS = ("starts", "ends", "sorted_ends")


class OperandArena:
    """Lazy structure-of-arrays view over one node set's probe inputs."""

    __slots__ = ("node_set", "_tp_padded")

    def __init__(self, node_set: NodeSet) -> None:
        self.node_set = node_set
        self._tp_padded: tuple[np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.node_set)

    @property
    def starts(self) -> np.ndarray:
        return self.node_set.starts

    @property
    def ends(self) -> np.ndarray:
        return self.node_set.ends

    @property
    def sorted_ends(self) -> np.ndarray:
        return self.node_set.sorted_ends

    @property
    def fingerprint(self) -> str:
        return self.node_set.fingerprint

    def turning_points(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, padded_values)`` for the T-tree floor probe.

        ``padded_values[0]`` is 0 and ``padded_values[i + 1]`` is the
        covering count at and after ``keys[i]``, so the floor lookup for
        a batch of positions is ``padded_values[searchsorted(keys, p,
        'right')]`` with no mask: a position before every turning point
        indexes the pad and counts 0.
        """
        cached = self._tp_padded
        if cached is None:
            keys, values = self.node_set.turning_points_arrays
            padded = np.empty(values.shape[0] + 1, dtype=np.int64)
            padded[0] = 0
            padded[1:] = values
            padded.setflags(write=False)
            cached = self._tp_padded = (keys, padded)
        return cached

    def shard_fields(self) -> Mapping[str, np.ndarray]:
        """The arrays to publish into a :class:`ShardArena`, by name.

        One definition of the operand wire/shared-memory layout: the
        shard pool copies exactly these fields, and
        :meth:`from_shard_views` inverts the mapping on the attach side.
        """
        return {
            "starts": self.starts,
            "ends": self.ends,
            "sorted_ends": self.sorted_ends,
        }

    @classmethod
    def from_shard_views(
        cls,
        views: Mapping[str, np.ndarray],
        name: str | None = None,
        fingerprint: str | None = None,
    ) -> "OperandArena":
        """Rebuild an arena (and its node set) from attached field views.

        The inverse of :meth:`shard_fields`: seeds every derived array a
        view was published for, so the attaching process never re-sorts
        or re-derives what the owner already computed.
        """
        node_set = NodeSet.from_arrays(
            views["starts"],
            views["ends"],
            name=name,
            fingerprint=fingerprint,
        )
        sorted_ends = views.get("sorted_ends")
        if sorted_ends is not None:
            node_set.__dict__["sorted_ends"] = sorted_ends
        return operand_arena(node_set)


def operand_arena(
    node_set: NodeSet, cache: "IndexCache | None" = None
) -> OperandArena:
    """The arena for ``node_set`` — content-shared when a cache is given.

    With a cache, the arena lives under ``("arena", fingerprint)`` so
    equal-content node sets share one; every access goes through the
    cache to keep its hit/miss accounting (and LRU order) meaningful.
    Without a cache the arena is memoized on the object itself, so
    repeated probes of the same set resolve in one attribute read.
    """
    if cache is not None:
        return cache.arena(node_set)
    arena = node_set.__dict__.get("_operand_arena")
    if arena is None:
        arena = OperandArena(node_set)
        node_set.__dict__["_operand_arena"] = arena
    return arena


def stab_count_table(
    ancestors: NodeSet, descendants: NodeSet, cache: "IndexCache"
) -> np.ndarray:
    """Stab counts of every descendant start against ``ancestors``.

    ``table[i]`` is the rank identity ``|{start <= p}| - |{end < p}|``
    at ``p = D.starts[i]`` — exactly :meth:`NodeSet.stab_counts`
    evaluated once over all of ``D.starts``.  Probe points for
    IM-DA-Est, SYS and
    SEMI-D are always draws *from* ``D.starts``, so with this table a
    probe batch is ``table[draws]`` — a gather instead of two binary
    searches per point.  Deterministic in the operand contents, hence
    cached under both fingerprints; only built when a cache exists to
    amortize it (a cold one-shot estimate keeps the direct searchsorted
    path).
    """
    a_arena = operand_arena(ancestors, cache)

    def build() -> np.ndarray:
        points = descendants.starts
        started = np.searchsorted(a_arena.starts, points, side="right")
        ended = np.searchsorted(a_arena.sorted_ends, points, side="left")
        table = (started - ended).astype(np.int64)
        table.setflags(write=False)
        return table

    return cache.get_or_build(
        ("stab_table", ancestors.fingerprint, descendants.fingerprint),
        build,
    )
