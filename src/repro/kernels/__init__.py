"""repro.kernels: backend-dispatched fused probe kernels.

The package splits the sampling estimators' hot path into three layers:

* :mod:`repro.kernels.arena` — the structure-of-arrays operand layout
  (:class:`OperandArena`) shared between the local probe path and the
  multi-process shard arenas, plus the content-keyed stab-count table;
* :mod:`repro.kernels.backend` — the backend registry:
  :func:`set_kernel_backend` switches between the always-present numpy
  implementation and the optional numba one (a soft dependency with
  silent numpy fallback — selecting it never changes results, only
  speed);
* :mod:`repro.kernels.fused` — the estimator-facing entry points fusing
  index_build → probe → scale into single passes, with the original
  per-call compositions retained under
  :func:`repro.perf.reference_kernels` as the semantics of record.
"""

from repro.kernels.arena import (
    OPERAND_FIELDS,
    OperandArena,
    operand_arena,
    stab_count_table,
)
from repro.kernels.backend import (
    KNOWN_BACKENDS,
    available_backends,
    kernel_backend,
    set_kernel_backend,
    use_kernel_backend,
)
from repro.kernels import fused

__all__ = [
    "KNOWN_BACKENDS",
    "OPERAND_FIELDS",
    "OperandArena",
    "available_backends",
    "fused",
    "kernel_backend",
    "operand_arena",
    "set_kernel_backend",
    "stab_count_table",
    "use_kernel_backend",
]
