"""Stack-Tree-Desc structural join (Al-Khalifa et al., ICDE 2002).

Merges the two start-sorted inputs once, maintaining a stack of ancestor
elements whose regions enclose the current position.  When a descendant is
reached, every stacked ancestor joins with it.  Runs in
O(|A| + |D| + output) — asymptotically optimal for pair production.

Output order is (d.start, a.start ascending within each d); use
:func:`sorted_pairs` when the ancestor-major order of the other algorithms
is needed.
"""

from __future__ import annotations

from repro.core.element import Element
from repro.core.nodeset import NodeSet


def stack_tree_join(
    ancestors: NodeSet, descendants: NodeSet
) -> list[tuple[Element, Element]]:
    """All ``(a, d)`` pairs with ``a`` an ancestor of ``d``."""
    result: list[tuple[Element, Element]] = []
    stack: list[Element] = []
    a_elements = ancestors.elements
    d_elements = descendants.elements
    ai = di = 0
    while di < len(d_elements):
        d = d_elements[di]
        # Push every ancestor that starts before d does.
        while ai < len(a_elements) and a_elements[ai].start < d.start:
            a = a_elements[ai]
            while stack and stack[-1].end < a.start:
                stack.pop()
            stack.append(a)
            ai += 1
        # Pop ancestors whose regions closed before d.
        while stack and stack[-1].end < d.start:
            stack.pop()
        # Everything left on the stack encloses d (strict nesting).
        for a in stack:
            result.append((a, d))
        di += 1
    return result


def sorted_pairs(
    pairs: list[tuple[Element, Element]],
) -> list[tuple[Element, Element]]:
    """Normalize join output to (a.start, d.start) order for comparison."""
    return sorted(pairs, key=lambda pair: (pair[0].start, pair[1].start))
