"""Exact containment join algorithms (ground truth for every estimator).

Three pair-producing algorithms with identical output and a count-only
routine:

* :func:`repro.join.naive.nested_loop_join` — O(|A|·|D|) reference.
* :func:`repro.join.merge.merge_join` — MPMGJN-style sort-merge join
  (Zhang et al., SIGMOD 2001).
* :func:`repro.join.stack_tree.stack_tree_join` — Stack-Tree-Desc structural
  join (Al-Khalifa et al., ICDE 2002).
* :func:`repro.join.size.containment_join_size` — output cardinality in
  O((|A|+|D|) log |A|) without materializing pairs; this is the ground
  truth used by the experiment harness.
"""

from repro.join.index_join import (
    descendant_start_index,
    probe_ancestors_join,
    probe_descendants_join,
)
from repro.join.merge import merge_join
from repro.join.naive import nested_loop_join
from repro.join.semijoin import (
    semijoin_ancestors,
    semijoin_ancestors_size,
    semijoin_descendants,
    semijoin_descendants_size,
)
from repro.join.size import containment_join_size, per_descendant_counts
from repro.join.stack_tree import stack_tree_join

#: Default pair-producing join (the asymptotically optimal one).
containment_join = stack_tree_join

__all__ = [
    "containment_join",
    "containment_join_size",
    "descendant_start_index",
    "merge_join",
    "nested_loop_join",
    "per_descendant_counts",
    "probe_ancestors_join",
    "probe_descendants_join",
    "semijoin_ancestors",
    "semijoin_ancestors_size",
    "semijoin_descendants",
    "semijoin_descendants_size",
    "stack_tree_join",
]
