"""Count-only containment join: exact sizes without materializing pairs.

The size of ``A ⋈ D`` equals ``Σ_d ancA(d)`` where ``ancA(d)`` is the number
of ancestors in ``A`` whose regions contain ``d.start`` (this is Theorem 1
of the paper applied exactly).  Each ``ancA(d)`` is a stabbing count —
two binary searches — so the whole size costs O((|A|+|D|) log |A|) and is
fully vectorized with numpy.
"""

from __future__ import annotations

import numpy as np

from repro.core.nodeset import NodeSet


def per_descendant_counts(
    ancestors: NodeSet, descendants: NodeSet
) -> np.ndarray:
    """``ancA(d)`` for every descendant, aligned with ``descendants.starts``.

    ``ancA(d) = |{a : a.start < d.start}| - |{a : a.end < d.start}|``; with
    distinct codes the strict/non-strict distinction at equality never
    arises between different elements, and an element never joins itself
    because its own start is not < itself.
    """
    if len(ancestors) == 0 or len(descendants) == 0:
        return np.zeros(len(descendants), dtype=np.int64)
    points = descendants.starts
    started = np.searchsorted(ancestors.starts, points, side="left")
    ended = np.searchsorted(ancestors.sorted_ends, points, side="left")
    return (started - ended).astype(np.int64)


def containment_join_size(ancestors: NodeSet, descendants: NodeSet) -> int:
    """Exact cardinality of the containment join ``A ⋈ D``."""
    return int(per_descendant_counts(ancestors, descendants).sum())
