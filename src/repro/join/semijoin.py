"""Containment semijoins: the cardinalities behind XPath predicates.

The motivating query ``//paper[appendix/table]`` does not need the full
join — it needs the *distinct ancestors* with at least one match (a
semijoin).  Symmetrically, a path step ``//appendix//table`` keeps the
distinct descendants.  Both cardinalities matter to an optimizer and are
cheap to compute exactly:

* distinct descendants with an ancestor: ``ancA(d) > 0`` per descendant —
  two binary searches each;
* distinct ancestors with a descendant: one sorted-merge sweep checking
  whether any descendant start falls strictly inside each ancestor.
"""

from __future__ import annotations

import numpy as np

from repro.core.nodeset import NodeSet
from repro.join.size import per_descendant_counts


def semijoin_descendants_size(ancestors: NodeSet, descendants: NodeSet) -> int:
    """``|{d ∈ D : ∃a ∈ A, a ancestor of d}|``."""
    return int((per_descendant_counts(ancestors, descendants) > 0).sum())


def semijoin_ancestors_size(ancestors: NodeSet, descendants: NodeSet) -> int:
    """``|{a ∈ A : ∃d ∈ D, a ancestor of d}|``.

    For each ancestor, checks whether some descendant start lies strictly
    inside ``(a.start, a.end)`` — vectorized as a rank difference over the
    sorted descendant starts.
    """
    if len(ancestors) == 0 or len(descendants) == 0:
        return 0
    starts = descendants.starts
    first_inside = np.searchsorted(starts, ancestors.starts, side="right")
    first_beyond = np.searchsorted(starts, ancestors.ends, side="left")
    return int((first_beyond > first_inside).sum())


def semijoin_descendants(
    ancestors: NodeSet, descendants: NodeSet
) -> NodeSet:
    """The matching descendants themselves, as a node set."""
    counts = per_descendant_counts(ancestors, descendants)
    kept = [
        element
        for element, count in zip(descendants.elements, counts)
        if count > 0
    ]
    return NodeSet(kept, name=f"{descendants.name}[semijoin]", validate=False)


def semijoin_ancestors(ancestors: NodeSet, descendants: NodeSet) -> NodeSet:
    """The matching ancestors themselves, as a node set."""
    if len(descendants) == 0:
        return NodeSet([], name=f"{ancestors.name}[semijoin]")
    starts = descendants.starts
    kept = []
    for element in ancestors:
        lo = int(np.searchsorted(starts, element.start, side="right"))
        if lo < len(starts) and int(starts[lo]) < element.end:
            kept.append(element)
    return NodeSet(kept, name=f"{ancestors.name}[semijoin]", validate=False)
