"""Index-assisted containment joins (the XR-tree's purpose).

The paper builds on the XR-tree line of work: when one operand is much
smaller than the other, a merge of both inputs (stack-tree join) wastes
work scanning the big side; probing an index on the big side instead
skips the non-joining majority:

* :func:`probe_ancestors_join` — descendants drive; each descendant stabs
  an XR-tree over the ancestors.  Cost O(|D| · (log |A| + output_d)),
  independent of |A|'s total size beyond the index.
* :func:`probe_descendants_join` — ancestors drive; each ancestor range-
  scans a B+-tree on descendant starts over ``(a.start, a.end)``.  Cost
  O(|A| · log |D| + output).

Both produce exactly the stack-tree join's pairs (tests verify) and win
when their driving side is selective (the benchmark quantifies it).
"""

from __future__ import annotations

from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.index.bplus import BPlusTree
from repro.index.xrtree import XRTree


def probe_ancestors_join(
    ancestors: NodeSet | XRTree, descendants: NodeSet
) -> list[tuple[Element, Element]]:
    """Descendant-driven join: stab an ancestor XR-tree per descendant.

    Accepts a prebuilt :class:`XRTree` to amortize index construction
    across joins, or builds one from the node set.
    """
    xrtree = (
        ancestors if isinstance(ancestors, XRTree) else XRTree(ancestors)
    )
    result: list[tuple[Element, Element]] = []
    for d in descendants:
        for a in xrtree.stab(d.start):
            if a.start < d.start:  # exclude a == d in self-joins
                result.append((a, d))
    return result


def descendant_start_index(descendants: NodeSet) -> BPlusTree:
    """B+-tree mapping start position -> element for the descendant set."""
    return BPlusTree.bulk_load(
        [(e.start, e) for e in descendants.elements]
    )


def probe_descendants_join(
    ancestors: NodeSet, descendants: NodeSet | BPlusTree
) -> list[tuple[Element, Element]]:
    """Ancestor-driven join: range-scan a descendant start B+-tree per
    ancestor.

    Accepts a prebuilt index from :func:`descendant_start_index`.
    """
    index = (
        descendants
        if isinstance(descendants, BPlusTree)
        else descendant_start_index(descendants)
    )
    result: list[tuple[Element, Element]] = []
    for a in ancestors:
        for __, d in index.range(a.start + 1, a.end - 1):
            result.append((a, d))
    return result
