"""MPMGJN-style sort-merge containment join.

Follows the multi-predicate merge join of Zhang et al. (SIGMOD 2001): both
inputs are sorted by start position; for each ancestor the descendant cursor
backtracks to the first descendant starting after ``a.start`` and scans
forward while ``d.start < a.end``.  With strictly nested region codes every
scanned descendant in that window joins, so the cost is
O(|A| log |D| + output).
"""

from __future__ import annotations

import numpy as np

from repro.core.element import Element
from repro.core.nodeset import NodeSet


def merge_join(
    ancestors: NodeSet, descendants: NodeSet
) -> list[tuple[Element, Element]]:
    """All ``(a, d)`` pairs with ``a`` an ancestor of ``d``.

    Pairs are produced in (a.start, d.start) order — the same order as
    :func:`repro.join.naive.nested_loop_join`.

    The descendant start array is the node set's cached numpy view, built
    once; both the backtrack position and the scan bound come from binary
    searches on it, so the per-ancestor work is O(log |D| + matches) with
    no per-call Python list construction.
    """
    result: list[tuple[Element, Element]] = []
    d_starts = descendants.starts
    d_elements = descendants.elements
    for a in ancestors:
        lo = int(np.searchsorted(d_starts, a.start, side="right"))
        hi = int(np.searchsorted(d_starts, a.end, side="left"))
        for d in d_elements[lo:hi]:
            result.append((a, d))
    return result
