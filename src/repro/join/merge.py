"""MPMGJN-style sort-merge containment join.

Follows the multi-predicate merge join of Zhang et al. (SIGMOD 2001): both
inputs are sorted by start position; for each ancestor the descendant cursor
backtracks to the first descendant starting after ``a.start`` and scans
forward while ``d.start < a.end``.  With strictly nested region codes every
scanned descendant in that window joins, so the cost is
O(|A| log |D| + output).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.element import Element
from repro.core.nodeset import NodeSet


def merge_join(
    ancestors: NodeSet, descendants: NodeSet
) -> list[tuple[Element, Element]]:
    """All ``(a, d)`` pairs with ``a`` an ancestor of ``d``.

    Pairs are produced in (a.start, d.start) order — the same order as
    :func:`repro.join.naive.nested_loop_join`.
    """
    result: list[tuple[Element, Element]] = []
    d_starts = [d.start for d in descendants]
    d_elements = descendants.elements
    for a in ancestors:
        cursor = bisect_right(d_starts, a.start)
        while cursor < len(d_elements) and d_starts[cursor] < a.end:
            result.append((a, d_elements[cursor]))
            cursor += 1
    return result
