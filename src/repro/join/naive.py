"""Nested-loop containment join: the O(|A|·|D|) correctness reference.

Evaluates the θ-join ``A ⋈ D`` with θ = ``a.start < d.start < a.end``
directly from the definition.  Used by tests to validate the optimized
algorithms and by the experiment harness only on tiny inputs.
"""

from __future__ import annotations

from repro.core.element import Element
from repro.core.nodeset import NodeSet


def nested_loop_join(
    ancestors: NodeSet, descendants: NodeSet
) -> list[tuple[Element, Element]]:
    """All ``(a, d)`` pairs with ``a`` an ancestor of ``d``.

    Pairs are produced in (a.start, d.start) order.
    """
    result: list[tuple[Element, Element]] = []
    for a in ancestors:
        for d in descendants:
            if a.start < d.start < a.end:
                result.append((a, d))
    return result
