"""Region-coded XML data trees.

A :class:`DataTree` stores an ordered tree of tagged elements together with
the region code ``(start, end)`` of every element, assigned by a single
depth-first traversal: each element consumes one position on entry (its
``start``) and one on exit (its ``end``), so all codes are distinct and
strictly nested — exactly the coding scheme the paper assumes (Section 3.1).

Trees are built either from nested ``(tag, children)`` tuples, with the
incremental :class:`TreeBuilder`, or by parsing XML text
(:func:`repro.xmltree.parser.parse_xml`).
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.core.element import Element
from repro.core.errors import ReproError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace

#: Nested-tuple description of a tree: a tag and a list of child specs.
NestedSpec = tuple[str, Sequence["NestedSpec"]]


class DataTree:
    """An immutable region-coded XML data tree.

    Elements are stored in document order (ascending ``start``), together
    with parent/children links for path evaluation.  The tree owns the
    canonical workspace ``[cmin, cmax]`` used by every estimator.
    """

    __slots__ = ("_elements", "_parents", "_children", "_tag_index")

    def __init__(
        self,
        elements: Sequence[Element],
        parents: Sequence[int],
    ) -> None:
        if not elements:
            raise ReproError("a data tree must contain at least one element")
        if len(elements) != len(parents):
            raise ReproError("elements and parents must have equal length")
        self._elements = tuple(elements)
        self._parents = tuple(parents)
        children: list[list[int]] = [[] for _ in elements]
        for index, parent in enumerate(parents):
            if parent >= 0:
                children[parent].append(index)
        self._children = tuple(tuple(c) for c in children)
        tag_index: dict[str, list[int]] = {}
        for index, element in enumerate(self._elements):
            tag_index.setdefault(element.tag, []).append(index)
        self._tag_index = {tag: tuple(ix) for tag, ix in tag_index.items()}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_nested(cls, spec: NestedSpec) -> "DataTree":
        """Build a tree from nested ``(tag, [child, ...])`` tuples.

        >>> tree = DataTree.from_nested(("a", [("b", []), ("c", [])]))
        >>> tree.size
        3
        """
        builder = TreeBuilder()
        stack: list[tuple[NestedSpec, bool]] = [(spec, False)]
        while stack:
            (tag, children), closing = stack.pop()
            if closing:
                builder.close()
                continue
            builder.open(tag)
            stack.append(((tag, children), True))
            for child in reversed(list(children)):
                stack.append((child, False))
        return builder.finish()

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------

    @property
    def elements(self) -> tuple[Element, ...]:
        """All elements in document order."""
        return self._elements

    @property
    def size(self) -> int:
        """Number of elements in the tree."""
        return len(self._elements)

    @property
    def root(self) -> Element:
        """The document root element."""
        return self._elements[0]

    def parent_index(self, index: int) -> int:
        """Index of the parent of element ``index`` (-1 for the root)."""
        return self._parents[index]

    def children_indices(self, index: int) -> tuple[int, ...]:
        """Indices of the children of element ``index``, in document order."""
        return self._children[index]

    def element(self, index: int) -> Element:
        """Element at document-order position ``index``."""
        return self._elements[index]

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:
        return (
            f"DataTree(size={self.size}, height={self.height}, "
            f"workspace={tuple(self.workspace())})"
        )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Height ``H`` of the tree: number of levels (root-only tree is 1).

        ``H`` bounds the number of ancestors any element has, the constant
        the sampling theorems (3 and 4) rely on.
        """
        return max(e.level for e in self._elements) + 1

    def workspace(self) -> Workspace:
        """``[cmin, cmax]`` over all elements of the tree."""
        return Workspace(self.root.start, self.root.end)

    def tags(self) -> dict[str, int]:
        """Tag-name frequency table for the whole tree."""
        return dict(Counter(e.tag for e in self._elements))

    def node_set(self, tag: str) -> NodeSet:
        """All elements with tag ``tag`` as a (validated-by-construction) set.

        Returns an empty node set when the tag does not occur.
        """
        indices = self._tag_index.get(tag, ())
        return NodeSet(
            (self._elements[i] for i in indices), name=tag, validate=False
        )

    def indices_with_tag(self, tag: str) -> tuple[int, ...]:
        """Document-order indices of elements with tag ``tag``."""
        return self._tag_index.get(tag, ())

    def descendant_indices(self, index: int) -> Iterator[int]:
        """Indices of all proper descendants of element ``index``."""
        stack = list(self._children[index])
        while stack:
            current = stack.pop()
            yield current
            stack.extend(self._children[current])

    def ancestor_indices(self, index: int) -> Iterator[int]:
        """Indices of all proper ancestors of element ``index``, bottom-up."""
        current = self._parents[index]
        while current >= 0:
            yield current
            current = self._parents[current]


class TreeBuilder:
    """Incremental construction of a :class:`DataTree`.

    Two equivalent styles are supported::

        builder = TreeBuilder()
        builder.open("a"); builder.open("b"); builder.close(); builder.close()
        tree = builder.finish()

    or, with context managers::

        with builder.element("a"):
            with builder.element("b"):
                pass
        tree = builder.finish()

    Region codes are assigned from a monotone counter that advances on every
    open and every close, which guarantees distinct, strictly nested codes.
    """

    def __init__(self, first_position: int = 1) -> None:
        self._position = first_position
        self._stack: list[tuple[str, int, int]] = []  # (tag, start, index)
        self._tags: list[str] = []
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._levels: list[int] = []
        self._parents: list[int] = []
        self._finished = False

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._stack)

    @property
    def current_tag(self) -> str | None:
        """Tag of the innermost open element, or None at top level."""
        return self._stack[-1][0] if self._stack else None

    def open(self, tag: str) -> int:
        """Open an element; returns its document-order index."""
        if self._finished:
            raise ReproError("builder already finished")
        if not self._stack and self._tags:
            raise ReproError(
                "cannot open a second root element; the tree must have "
                "exactly one root"
            )
        index = len(self._tags)
        parent = self._stack[-1][2] if self._stack else -1
        self._tags.append(tag)
        self._starts.append(self._position)
        self._ends.append(-1)
        self._levels.append(len(self._stack))
        self._parents.append(parent)
        self._stack.append((tag, self._position, index))
        self._position += 1
        return index

    def close(self) -> None:
        """Close the most recently opened element."""
        if not self._stack:
            raise ReproError("close() without a matching open()")
        __, __, index = self._stack.pop()
        self._ends[index] = self._position
        self._position += 1

    @contextmanager
    def element(self, tag: str) -> Iterator[int]:
        """Context manager that opens ``tag`` on entry and closes it on exit."""
        index = self.open(tag)
        try:
            yield index
        finally:
            self.close()

    def advance(self, count: int) -> None:
        """Consume ``count`` positions without emitting elements.

        Models *word-granularity* region coding (Zhang et al.): each text
        word occupies one position, widening the enclosing element's
        region.  ``advance(0)`` is a no-op; negative counts are rejected.
        """
        if self._finished:
            raise ReproError("builder already finished")
        if count < 0:
            raise ReproError(f"cannot advance by {count}")
        self._position += count

    def leaf(self, tag: str, words: int = 0) -> int:
        """Open and immediately close an element; returns its index.

        ``words`` positions of text content are consumed inside the
        element (word-granularity coding).
        """
        index = self.open(tag)
        self.advance(words)
        self.close()
        return index

    def finish(self) -> DataTree:
        """Finalize and return the tree; the builder cannot be reused."""
        if self._stack:
            raise ReproError(
                f"{len(self._stack)} element(s) still open, e.g. "
                f"<{self._stack[-1][0]}>"
            )
        if not self._tags:
            raise ReproError("no elements were added")
        self._finished = True
        elements = [
            Element(tag=t, start=s, end=e, level=lv)
            for t, s, e, lv in zip(
                self._tags, self._starts, self._ends, self._levels
            )
        ]
        return DataTree(elements, self._parents)
