"""Serialize region-coded data trees back to XML text.

The serializer is the inverse of :func:`repro.xmltree.parser.parse_xml`
modulo whitespace: ``parse_xml(to_xml(tree))`` yields a tree with the same
tags, structure and region codes (a property the test suite checks).
"""

from __future__ import annotations

from repro.xmltree.tree import DataTree


def to_xml(
    tree: DataTree,
    indent: int = 2,
    include_regions: bool = False,
) -> str:
    """Render ``tree`` as indented XML text.

    Args:
        tree: the data tree to serialize.
        indent: spaces per nesting level (0 writes a single line per tag
            with no leading whitespace).
        include_regions: when True, emit ``start``/``end`` attributes with
            each element's region code — useful for debugging datasets.
    """
    pieces: list[str] = []

    def emit(index: int, level: int) -> None:
        element = tree.element(index)
        pad = " " * (indent * level)
        attrs = ""
        if include_regions:
            attrs = f' start="{element.start}" end="{element.end}"'
        children = tree.children_indices(index)
        if children:
            pieces.append(f"{pad}<{element.tag}{attrs}>")
            for child in children:
                emit(child, level + 1)
            pieces.append(f"{pad}</{element.tag}>")
        else:
            pieces.append(f"{pad}<{element.tag}{attrs}/>")

    emit(0, 0)
    return "\n".join(pieces) + "\n"
