"""Document structure statistics.

Summaries of a data tree's shape — the quantities that drive estimator
behaviour: depth distribution (bounds every subjoin, Theorems 3-4),
fanout distribution (bucket density), per-tag level spread (recursion
witness), and path counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.xmltree.tree import DataTree


@dataclass(frozen=True, slots=True)
class TreeStatistics:
    """Shape summary of one data tree."""

    size: int
    height: int
    leaf_count: int
    average_depth: float
    average_fanout: float
    max_fanout: int
    depth_histogram: dict[int, int]
    recursive_tags: tuple[str, ...]

    def describe(self) -> str:
        depths = ", ".join(
            f"{level}:{count}"
            for level, count in sorted(self.depth_histogram.items())
        )
        recursive = ", ".join(self.recursive_tags) or "none"
        return (
            f"{self.size} elements, height {self.height}, "
            f"{self.leaf_count} leaves; avg depth {self.average_depth:.2f}, "
            f"avg fanout {self.average_fanout:.2f} "
            f"(max {self.max_fanout}); recursive tags: {recursive}; "
            f"depth histogram {{{depths}}}"
        )


def tree_statistics(tree: DataTree) -> TreeStatistics:
    """Compute :class:`TreeStatistics` in one pass over the tree."""
    depth_histogram: Counter = Counter()
    fanouts = []
    leaf_count = 0
    for index in range(tree.size):
        element = tree.element(index)
        depth_histogram[element.level] += 1
        children = tree.children_indices(index)
        if children:
            fanouts.append(len(children))
        else:
            leaf_count += 1
    total_depth = sum(
        level * count for level, count in depth_histogram.items()
    )
    return TreeStatistics(
        size=tree.size,
        height=tree.height,
        leaf_count=leaf_count,
        average_depth=total_depth / tree.size,
        average_fanout=(
            sum(fanouts) / len(fanouts) if fanouts else 0.0
        ),
        max_fanout=max(fanouts, default=0),
        depth_histogram=dict(depth_histogram),
        recursive_tags=tuple(sorted(recursive_tags(tree))),
    )


def recursive_tags(tree: DataTree) -> set[str]:
    """Tags that occur nested inside themselves (Table 2's "N/A" sets)."""
    found: set[str] = set()
    open_tags: list[str] = []
    # Elements in document order: maintain the open-tag stack by level.
    for element in tree.elements:
        del open_tags[element.level :]
        if element.tag in open_tags:
            found.add(element.tag)
        open_tags.append(element.tag)
    return found


def tag_level_spread(tree: DataTree) -> dict[str, tuple[int, int]]:
    """Per tag: (minimum level, maximum level) it occurs at."""
    spread: dict[str, tuple[int, int]] = {}
    for element in tree.elements:
        low, high = spread.get(element.tag, (element.level, element.level))
        spread[element.tag] = (
            min(low, element.level),
            max(high, element.level),
        )
    return spread
