"""XML data tree substrate: region-coded trees, parsing, serialization, paths."""

from repro.xmltree.parser import parse_xml
from repro.xmltree.stats import (
    recursive_tags,
    tag_level_spread,
    tree_statistics,
)
from repro.xmltree.serializer import to_xml
from repro.xmltree.tree import DataTree, TreeBuilder
from repro.xmltree.xpath import evaluate_path

__all__ = [
    "DataTree",
    "TreeBuilder",
    "evaluate_path",
    "parse_xml",
    "recursive_tags",
    "tag_level_spread",
    "to_xml",
    "tree_statistics",
]
