"""A mini-XPath evaluator for forming node sets.

Supports the fragment the paper's motivating queries use:

* absolute paths with child (``/``) and descendant (``//``) axes, e.g.
  ``/site/regions``, ``//appendix//table``;
* the wildcard ``*`` name test;
* one level of existence predicates with relative paths, e.g.
  ``//paper[appendix/table]``.

Evaluation returns a :class:`repro.core.nodeset.NodeSet`, the operand type
of containment joins and estimators.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import QueryError
from repro.core.nodeset import NodeSet
from repro.xmltree.tree import DataTree

_STEP = re.compile(
    r"(?P<axis>//|/)"
    r"(?P<name>\*|[A-Za-z_:][\w.\-:]*)"
    r"(?P<preds>(?:\[[^\[\]]+\])*)"
)

_PREDICATE = re.compile(r"\[([^\[\]]+)\]")


@dataclass(frozen=True, slots=True)
class _Step:
    axis: str  # "child" or "descendant"
    name: str  # tag name or "*"
    predicates: tuple[str, ...]


def _compile(path: str) -> list[_Step]:
    if not path or path[0] != "/":
        raise QueryError(
            f"path {path!r} must be absolute (start with / or //)"
        )
    steps: list[_Step] = []
    position = 0
    while position < len(path):
        match = _STEP.match(path, position)
        if match is None:
            raise QueryError(
                f"cannot parse path {path!r} at offset {position}"
            )
        steps.append(
            _Step(
                axis="descendant" if match.group("axis") == "//" else "child",
                name=match.group("name"),
                predicates=tuple(
                    _PREDICATE.findall(match.group("preds") or "")
                ),
            )
        )
        position = match.end()
    return steps


def _matches(tree: DataTree, index: int, name: str) -> bool:
    return name == "*" or tree.element(index).tag == name


def _step_candidates(tree: DataTree, context: int, step: _Step) -> list[int]:
    if step.axis == "child":
        pool = tree.children_indices(context)
    else:
        pool = tree.descendant_indices(context)
    return [i for i in pool if _matches(tree, i, step.name)]


def _satisfies_predicate(tree: DataTree, index: int, predicate: str) -> bool:
    relative = predicate if predicate.startswith("/") else "/" + predicate
    steps = _compile(relative)
    return bool(_evaluate_steps(tree, [index], steps))


def _satisfies_all(tree: DataTree, index: int, step: _Step) -> bool:
    return all(
        _satisfies_predicate(tree, index, predicate)
        for predicate in step.predicates
    )


def _evaluate_steps(
    tree: DataTree, contexts: list[int], steps: list[_Step]
) -> list[int]:
    current = contexts
    for step in steps:
        matched: set[int] = set()
        for context in current:
            for candidate in _step_candidates(tree, context, step):
                if _satisfies_all(tree, candidate, step):
                    matched.add(candidate)
        current = sorted(matched)
        if not current:
            break
    return current


def evaluate_path(tree: DataTree, path: str) -> NodeSet:
    """Evaluate an absolute path expression against ``tree``.

    >>> tree = DataTree.from_nested(("a", [("b", [("c", [])]), ("c", [])]))
    >>> len(evaluate_path(tree, "//c"))
    2
    >>> len(evaluate_path(tree, "//b/c"))
    1
    """
    steps = _compile(path)
    first, rest = steps[0], steps[1:]
    if first.axis == "child":
        roots = [0] if _matches(tree, 0, first.name) else []
    else:
        roots = [
            i for i in range(tree.size) if _matches(tree, i, first.name)
        ]
    roots = [i for i in roots if _satisfies_all(tree, i, first)]
    indices = _evaluate_steps(tree, roots, rest) if rest else roots
    return NodeSet(
        (tree.element(i) for i in indices), name=path, validate=False
    )
