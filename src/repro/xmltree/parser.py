"""A small, dependency-free XML parser producing region-coded data trees.

The parser handles the XML subset needed for the datasets of the paper:
element tags with attributes, character data, comments, processing
instructions, CDATA sections, an optional XML declaration and a DOCTYPE
line.  Character data and attributes do not consume region positions — only
element open/close events do, matching the logical region coding used by
the paper's join condition.
"""

from __future__ import annotations

import re

from repro.core.errors import ParseError
from repro.xmltree.tree import DataTree, TreeBuilder

_TOKEN = re.compile(
    r"""
    <\?.*?\?>                 # processing instruction / xml declaration
  | <!--.*?-->                # comment
  | <!\[CDATA\[.*?\]\]>       # CDATA section
  | <!DOCTYPE[^>]*>           # doctype (internal subsets unsupported)
  | </\s*(?P<close>[^\s>]+)\s*>             # closing tag
  | <\s*(?P<open>[^\s/>!?][^\s/>]*)         # opening tag name
      (?P<attrs>(?:\s+[^\s=/>]+\s*=\s*(?:"[^"]*"|'[^']*'))*)
      \s*(?P<selfclose>/?)>
  | (?P<text>[^<]+)           # character data
    """,
    re.VERBOSE | re.DOTALL,
)

_NAME = re.compile(r"^[A-Za-z_:][\w.\-:]*$")


def parse_xml(
    text: str, first_position: int = 1, count_words: bool = False
) -> DataTree:
    """Parse XML ``text`` into a region-coded :class:`DataTree`.

    Args:
        text: the XML document.
        first_position: region code assigned to the root's start event.
        count_words: when True, every whitespace-separated word of
            character data consumes one region position (the
            word-granularity coding of Zhang et al.); by default text
            does not affect the codes.

    Raises:
        ParseError: on mismatched tags, trailing content, multiple roots
            or any construct outside the supported subset.
    """
    builder = TreeBuilder(first_position=first_position)
    position = 0
    length = len(text)
    saw_root = False

    while position < length:
        match = _TOKEN.match(text, position)
        if match is None:
            snippet = text[position : position + 30]
            raise ParseError(f"unparseable content at offset {position}: {snippet!r}")
        position = match.end()

        if match.group("text") is not None:
            content = match.group("text")
            if content.strip() and builder.depth == 0:
                raise ParseError("character data outside the root element")
            if count_words:
                builder.advance(len(content.split()))
            continue
        if match.group("close") is not None:
            tag = match.group("close")
            if builder.depth == 0:
                raise ParseError(f"closing tag </{tag}> without an open element")
            if builder.current_tag != tag:
                raise ParseError(
                    f"mismatched closing tag </{tag}>; expected "
                    f"</{builder.current_tag}>"
                )
            builder.close()
            continue
        if match.group("open") is not None:
            tag = match.group("open")
            if not _NAME.match(tag):
                raise ParseError(f"invalid element name {tag!r}")
            if builder.depth == 0 and saw_root:
                raise ParseError("document has more than one root element")
            saw_root = True
            builder.open(tag)
            if match.group("selfclose"):
                builder.close()
            continue
        # Comments, PIs, CDATA, DOCTYPE: skipped.

    if builder.depth != 0:
        raise ParseError(f"{builder.depth} element(s) left open at end of input")
    if not saw_root:
        raise ParseError("document contains no elements")
    return builder.finish()
