"""Exact chain containment joins.

A *chain query* over node sets ``s_1 // s_2 // ... // s_k`` asks for all
tuples ``(e_1, ..., e_k)`` with each ``e_i`` an ancestor of ``e_{i+1}``.
This module computes the exact result cardinality — the ground truth the
optimizer's estimates are judged against — by dynamic programming over
per-element embedding counts:

    count_1[e] = 1                       for e in s_1
    count_i[d] = Σ_{a ∈ s_{i-1}, a ancestor of d} count_{i-1}[a]

The per-step aggregation reuses the stack-tree join, so the whole chain
costs O(Σ (|s_i| + |s_{i+1}| + join_i)).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.join.stack_tree import stack_tree_join


def chain_join_size(node_sets: Sequence[NodeSet]) -> int:
    """Exact number of nested-chain tuples across ``node_sets``.

    For two sets this equals the containment join size; one set yields its
    cardinality.
    """
    if not node_sets:
        raise EstimationError("chain needs at least one node set")
    counts: dict[int, int] = {id(e): 1 for e in node_sets[0]}
    for ancestors, descendants in zip(node_sets, node_sets[1:]):
        next_counts: dict[int, int] = {}
        for a, d in stack_tree_join(ancestors, descendants):
            weight = counts.get(id(a), 0)
            if weight:
                key = id(d)
                next_counts[key] = next_counts.get(key, 0) + weight
        counts = next_counts
        if not counts:
            return 0
    return sum(counts.values())
