"""Join-order selection for chains of containment joins.

Given a chain ``s_1 // s_2 // ... // s_k`` the planner picks the
parenthesization minimizing the total estimated intermediate result size
(the classic optimizer objective the paper's introduction motivates).

Chain-segment cardinalities come from a pluggable
:class:`~repro.optimizer.generator.CardinalityGenerator`: the enumerator
asks the generator for the size of every segment ``i..j`` and never
assumes how that number is produced.  Wrapping a plain estimator in the
default adapter (:class:`~repro.optimizer.generator.EstimatorGenerator`)
reproduces the historical behavior exactly — adjacent pairs are
estimated, longer segments compose under the independence assumption::

    size(i..j) = size(i..j-1) · size(j-1, j) / |s_{j-1}|

— while the exact-oracle, service-backed and pessimistic upper-bound
generators plug in without touching the enumerator.  Dynamic programming
over segments then mirrors matrix-chain ordering.

:func:`optimize` is the generator-native entry point;
:func:`optimize_chain` is the deprecated estimator-argument shim kept
for backward compatibility.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.errors import PlanError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimator, _from_wire_float, _to_wire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.catalog import StatisticsCatalog
    from repro.optimizer.generator import CardinalityGenerator

#: Wire-format version written by :meth:`JoinPlan.to_dict`.
PLAN_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class JoinPlan:
    """A parenthesization of the chain segment ``lo..hi`` (inclusive).

    Leaves (``lo == hi``) are base node sets; internal nodes join the
    results of ``left`` and ``right`` (adjacent segments).
    """

    lo: int
    hi: int
    estimated_size: float
    left: "JoinPlan | None" = None
    right: "JoinPlan | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.lo == self.hi

    def describe(self, names: Sequence[str]) -> str:
        """Human-readable plan, e.g. ``(paper ⋈ (appendix ⋈ table))``."""
        if self.is_leaf:
            return names[self.lo]
        assert self.left is not None and self.right is not None
        return (
            f"({self.left.describe(names)} ⋈ {self.right.describe(names)})"
        )

    def to_dict(self) -> dict[str, Any]:
        """Wire form of the plan tree, versioned with
        :data:`PLAN_SCHEMA_VERSION`.

        Strictly JSON-representable, following the same conventions as
        :meth:`repro.estimators.base.Estimate.to_dict`: non-finite sizes
        are encoded as the strings ``"Infinity"`` / ``"-Infinity"`` /
        ``"NaN"``.  Only the root carries ``schema_version``; subtrees
        are plain nodes.
        """

        def node(plan: "JoinPlan") -> dict[str, Any]:
            payload: dict[str, Any] = {
                "lo": plan.lo,
                "hi": plan.hi,
                "estimated_size": _to_wire(plan.estimated_size),
            }
            if not plan.is_leaf:
                assert plan.left is not None and plan.right is not None
                payload["left"] = node(plan.left)
                payload["right"] = node(plan.right)
            return payload

        return {"schema_version": PLAN_SCHEMA_VERSION, **node(self)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JoinPlan":
        """Rebuild a :class:`JoinPlan` from its :meth:`to_dict` form.

        Raises :class:`~repro.core.errors.PlanError` for a missing or
        unsupported ``schema_version`` and for structurally invalid
        nodes (a leaf with children, an internal node missing one, or
        children that do not partition the segment).
        """
        if not isinstance(payload, dict):
            raise PlanError(
                f"plan payload must be a dict, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != PLAN_SCHEMA_VERSION:
            raise PlanError(
                f"unsupported JoinPlan schema_version {version!r} "
                f"(this version reads {PLAN_SCHEMA_VERSION})"
            )

        def node(data: Any) -> "JoinPlan":
            if not isinstance(data, dict):
                raise PlanError(
                    f"plan node must be a dict, got {type(data).__name__}"
                )
            try:
                lo = int(data["lo"])
                hi = int(data["hi"])
                size = _from_wire_float(data["estimated_size"])
            except (KeyError, TypeError, ValueError) as exc:
                raise PlanError(f"malformed plan node: {exc}") from exc
            if size is None:
                raise PlanError("plan node estimated_size cannot be null")
            if lo > hi:
                raise PlanError(f"plan node has lo {lo} > hi {hi}")
            left_data = data.get("left")
            right_data = data.get("right")
            if lo == hi:
                if left_data is not None or right_data is not None:
                    raise PlanError(
                        f"leaf plan node {lo} must not have children"
                    )
                return cls(lo, hi, size)
            if left_data is None or right_data is None:
                raise PlanError(
                    f"internal plan node {lo}..{hi} needs both children"
                )
            left = node(left_data)
            right = node(right_data)
            if (
                left.lo != lo
                or right.hi != hi
                or left.hi + 1 != right.lo
            ):
                raise PlanError(
                    f"children {left.lo}..{left.hi} and "
                    f"{right.lo}..{right.hi} do not partition {lo}..{hi}"
                )
            return cls(lo, hi, size, left, right)

        return node(payload)


def plan_cost(plan: JoinPlan) -> float:
    """Total estimated size of all *intermediate* results of ``plan``.

    The final (root) result is excluded: it is identical for every
    parenthesization and would only blur the comparison.
    """

    def internal_sizes(node: JoinPlan, is_root: bool) -> float:
        if node.is_leaf:
            return 0.0
        assert node.left is not None and node.right is not None
        own = 0.0 if is_root else node.estimated_size
        return (
            own
            + internal_sizes(node.left, False)
            + internal_sizes(node.right, False)
        )

    return internal_sizes(plan, True)


def optimize(
    node_sets: Sequence[NodeSet],
    generator: "CardinalityGenerator | Estimator | str" = "PL",
    *,
    workspace: Workspace | None = None,
    catalog: "StatisticsCatalog | None" = None,
    **config: Any,
) -> JoinPlan:
    """Pick the cheapest parenthesization of a containment-join chain.

    Args:
        node_sets: the chain ``s_1 // ... // s_k`` (k >= 2), outermost
            ancestor first.
        generator: a :class:`~repro.optimizer.generator
            .CardinalityGenerator`, a bare estimator (auto-wrapped in
            the pairwise adapter), or any name
            :func:`~repro.optimizer.generator.resolve_generator`
            accepts ("PL", "exact", "ubound", "pessimistic", ...).
        workspace: shared position domain (defaults per estimator call,
            matching the historical planner behavior).
        catalog: optional statistics catalog forwarded to the
            generator's ``setup_for_workload`` hook.
        **config: constructor arguments when ``generator`` is a name.

    Returns:
        the optimal :class:`JoinPlan` (ties broken toward left-deep).

    Raises:
        PlanError: for chains shorter than two node sets or when the
            generator's ``pre_check`` rejects the workload.
    """
    from repro.optimizer.generator import PlanningState, as_generator

    k = len(node_sets)
    if k < 2:
        raise PlanError("chain optimization needs >= 2 node sets")

    gen = as_generator(generator, **config)
    gen.setup_for_workload(workspace, catalog)
    state = PlanningState(tuple(node_sets), workspace=workspace)
    gen.pre_check(state)

    # segment_size[i][j]: estimated tuples of the chain s_i // ... // s_j,
    # filled shortest-first so pairwise generators memoize bottom-up.
    segment_size = [[0.0] * k for __ in range(k)]
    for length in range(1, k + 1):
        for i in range(k - length + 1):
            j = i + length - 1
            segment_size[i][j] = gen.estimate_join(i, j, state)

    # Matrix-chain DP over (cost, plan).
    best: dict[tuple[int, int], JoinPlan] = {}
    cost: dict[tuple[int, int], float] = {}
    for i in range(k):
        best[(i, i)] = JoinPlan(i, i, segment_size[i][i])
        cost[(i, i)] = 0.0
    for length in range(2, k + 1):
        for i in range(k - length + 1):
            j = i + length - 1
            champion: JoinPlan | None = None
            champion_cost = float("inf")
            for split in range(i, j):
                left = best[(i, split)]
                right = best[(split + 1, j)]
                subtotal = (
                    cost[(i, split)]
                    + cost[(split + 1, j)]
                    + (0.0 if split == i else segment_size[i][split])
                    + (0.0 if split + 1 == j else segment_size[split + 1][j])
                )
                if subtotal < champion_cost:
                    champion_cost = subtotal
                    champion = JoinPlan(
                        i, j, segment_size[i][j], left, right
                    )
            assert champion is not None
            best[(i, j)] = champion
            cost[(i, j)] = champion_cost
    return best[(0, k - 1)]


def optimize_chain(
    node_sets: Sequence[NodeSet],
    estimator: Estimator,
    workspace: Workspace | None = None,
) -> JoinPlan:
    """Deprecated estimator-argument planner entry point.

    Auto-wraps ``estimator`` in the pairwise adapter generator and
    delegates to :func:`optimize`; the resulting plan is bit-identical
    to what the pre-generator planner produced.  New code should call
    ``optimize(node_sets, estimator, workspace=workspace)`` (or pass a
    generator / generator name) directly.

    .. deprecated:: 1.6
        Use :func:`optimize` / :func:`repro.api.optimize` instead.
    """
    warnings.warn(
        "optimize_chain(node_sets, estimator) is deprecated; use "
        "optimize(node_sets, generator, workspace=...) which also "
        "accepts estimators and generator names",
        DeprecationWarning,
        stacklevel=2,
    )
    return optimize(node_sets, estimator, workspace=workspace)
