"""Join-order selection for chains of containment joins.

Given a chain ``s_1 // s_2 // ... // s_k`` the planner picks the
parenthesization minimizing the total estimated intermediate result size
(the classic optimizer objective the paper's introduction motivates).

Chain-segment cardinalities are estimated compositionally: adjacent-pair
sizes come from any :class:`repro.estimators.base.Estimator`, and a longer
segment ``i..j`` multiplies the pair estimate by the conditional fan-out
of each extension step::

    size(i..j) = size(i..j-1) · size(j-1, j) / |s_{j-1}|

(the independence assumption optimizers conventionally make).  Dynamic
programming over segments then mirrors matrix-chain ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimator


@dataclass(frozen=True, slots=True)
class JoinPlan:
    """A parenthesization of the chain segment ``lo..hi`` (inclusive).

    Leaves (``lo == hi``) are base node sets; internal nodes join the
    results of ``left`` and ``right`` (adjacent segments).
    """

    lo: int
    hi: int
    estimated_size: float
    left: "JoinPlan | None" = None
    right: "JoinPlan | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.lo == self.hi

    def describe(self, names: Sequence[str]) -> str:
        """Human-readable plan, e.g. ``(paper ⋈ (appendix ⋈ table))``."""
        if self.is_leaf:
            return names[self.lo]
        assert self.left is not None and self.right is not None
        return (
            f"({self.left.describe(names)} ⋈ {self.right.describe(names)})"
        )


def plan_cost(plan: JoinPlan) -> float:
    """Total estimated size of all *intermediate* results of ``plan``.

    The final (root) result is excluded: it is identical for every
    parenthesization and would only blur the comparison.
    """

    def internal_sizes(node: JoinPlan, is_root: bool) -> float:
        if node.is_leaf:
            return 0.0
        assert node.left is not None and node.right is not None
        own = 0.0 if is_root else node.estimated_size
        return (
            own
            + internal_sizes(node.left, False)
            + internal_sizes(node.right, False)
        )

    return internal_sizes(plan, True)


def optimize_chain(
    node_sets: Sequence[NodeSet],
    estimator: Estimator,
    workspace: Workspace | None = None,
) -> JoinPlan:
    """Pick the cheapest parenthesization of a containment-join chain.

    Args:
        node_sets: the chain ``s_1 // ... // s_k`` (k >= 2), outermost
            ancestor first.
        estimator: any containment join size estimator; it is invoked once
            per adjacent pair.
        workspace: shared position domain (defaults per estimator call).

    Returns:
        the optimal :class:`JoinPlan` (ties broken toward left-deep).
    """
    k = len(node_sets)
    if k < 2:
        raise EstimationError("chain optimization needs >= 2 node sets")

    pair_sizes = [
        max(
            0.0,
            estimator.estimate(
                node_sets[i], node_sets[i + 1], workspace
            ).value,
        )
        for i in range(k - 1)
    ]

    # segment_size[i][j]: estimated tuples of the chain s_i // ... // s_j.
    segment_size = [[0.0] * k for __ in range(k)]
    for i in range(k):
        segment_size[i][i] = float(len(node_sets[i]))
    for i in range(k - 1):
        segment_size[i][i + 1] = pair_sizes[i]
    for length in range(3, k + 1):
        for i in range(k - length + 1):
            j = i + length - 1
            previous = segment_size[i][j - 1]
            base = len(node_sets[j - 1])
            fanout = pair_sizes[j - 1] / base if base else 0.0
            segment_size[i][j] = previous * fanout

    # Matrix-chain DP over (cost, plan).
    best: dict[tuple[int, int], JoinPlan] = {}
    cost: dict[tuple[int, int], float] = {}
    for i in range(k):
        best[(i, i)] = JoinPlan(i, i, segment_size[i][i])
        cost[(i, i)] = 0.0
    for length in range(2, k + 1):
        for i in range(k - length + 1):
            j = i + length - 1
            champion: JoinPlan | None = None
            champion_cost = float("inf")
            for split in range(i, j):
                left = best[(i, split)]
                right = best[(split + 1, j)]
                subtotal = (
                    cost[(i, split)]
                    + cost[(split + 1, j)]
                    + (0.0 if split == i else segment_size[i][split])
                    + (0.0 if split + 1 == j else segment_size[split + 1][j])
                )
                if subtotal < champion_cost:
                    champion_cost = subtotal
                    champion = JoinPlan(
                        i, j, segment_size[i][j], left, right
                    )
            assert champion is not None
            best[(i, j)] = champion
            cost[(i, j)] = champion_cost
    return best[(0, k - 1)]
