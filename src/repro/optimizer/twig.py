"""Twig (branching path) pattern counting and estimation.

The motivating query ``//paper[appendix/table]`` is a *twig*: a small
tree pattern whose edges are ancestor-descendant constraints.  This
module provides

* :func:`twig_match_count` — the exact number of embeddings of a twig
  pattern, by bottom-up weighted containment joins (each edge costs one
  stack-tree join over the matching node sets);
* :func:`estimate_twig_size` — the optimizer-style estimate composing
  per-edge containment-join estimates under the usual independence
  assumption::

      emb ≈ Π_edges Ĵ(edge) / Π_nodes |S_v| ** (incident_edges(v) - 1)

  which reduces to the chain composition of
  :mod:`repro.optimizer.planner` for path-shaped twigs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimator
from repro.join.stack_tree import stack_tree_join

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.optimizer.generator import CardinalityGenerator

#: Resolves a tag name to its node set (e.g. ``dataset.node_set``).
NodeSetProvider = Callable[[str], NodeSet]


@dataclass(frozen=True)
class TwigNode:
    """One node of a twig pattern: a tag plus descendant sub-patterns."""

    tag: str
    children: tuple["TwigNode", ...] = field(default_factory=tuple)

    def edges(self) -> list[tuple["TwigNode", "TwigNode"]]:
        """All (ancestor node, descendant node) edges, preorder."""
        result: list[tuple[TwigNode, TwigNode]] = []
        for child in self.children:
            result.append((self, child))
            result.extend(child.edges())
        return result

    def nodes(self) -> list["TwigNode"]:
        result: list[TwigNode] = [self]
        for child in self.children:
            result.extend(child.nodes())
        return result

    def __str__(self) -> str:
        if not self.children:
            return self.tag
        inner = "".join(f"[{child}]" for child in self.children)
        return f"{self.tag}{inner}"


def twig(tag: str, *children: "TwigNode | str") -> TwigNode:
    """Convenience constructor: ``twig("paper", twig("appendix", "table"))``."""
    resolved = tuple(
        child if isinstance(child, TwigNode) else TwigNode(child)
        for child in children
    )
    return TwigNode(tag, resolved)


def _weights(node: TwigNode, provider: NodeSetProvider) -> dict[int, int]:
    """Bottom-up embedding counts, keyed by element identity.

    ``weights[id(e)]`` = number of embeddings of the sub-twig rooted at
    ``node`` that map the sub-twig root to element ``e``.
    """
    elements = provider(node.tag)
    weights = {id(e): 1 for e in elements}
    for child in node.children:
        child_weights = _weights(child, provider)
        child_elements = provider(child.tag)
        sums: dict[int, int] = {}
        for ancestor, descendant in stack_tree_join(elements, child_elements):
            contribution = child_weights.get(id(descendant), 0)
            if contribution:
                key = id(ancestor)
                sums[key] = sums.get(key, 0) + contribution
        for element in elements:
            key = id(element)
            weights[key] *= sums.get(key, 0)
    return weights


def twig_match_count(provider: NodeSetProvider, pattern: TwigNode) -> int:
    """Exact number of embeddings of ``pattern``.

    An embedding assigns each twig node an element with the node's tag
    such that every twig edge is an ancestor-descendant pair.
    """
    return sum(_weights(pattern, provider).values())


def twig_semijoin_count(provider: NodeSetProvider, pattern: TwigNode) -> int:
    """XPath-predicate semantics: distinct root elements with >= 1
    embedding (the actual result size of ``//paper[appendix/table]``)."""
    return sum(
        1 for value in _weights(pattern, provider).values() if value > 0
    )


def estimate_twig_size(
    provider: NodeSetProvider,
    pattern: TwigNode,
    estimator: "CardinalityGenerator | Estimator | str",
    workspace: Workspace | None = None,
) -> float:
    """Estimated embedding count under per-edge independence.

    ``estimator`` may be a bare estimator (the historical argument,
    wrapped silently), a
    :class:`~repro.optimizer.generator.CardinalityGenerator`, or any
    name :func:`~repro.optimizer.generator.resolve_generator` accepts —
    each twig edge is costed as a two-leaf chain segment through the
    generator interface, so the exact-oracle and pessimistic bound
    generators drive twig estimation too.
    """
    from repro.optimizer.generator import PlanningState, as_generator

    generator = as_generator(estimator)
    generator.setup_for_workload(workspace)
    nodes = pattern.nodes()
    if len(nodes) == 1:
        return float(len(provider(pattern.tag)))
    incident: dict[int, int] = {}  # keyed by node identity: tags can repeat
    product = 1.0
    for ancestor_node, descendant_node in pattern.edges():
        a = provider(ancestor_node.tag)
        d = provider(descendant_node.tag)
        if len(a) == 0 or len(d) == 0:
            return 0.0
        edge_state = PlanningState((a, d), workspace=workspace)
        generator.pre_check(edge_state)
        product *= max(0.0, generator.estimate_join(0, 1, edge_state))
        incident[id(ancestor_node)] = incident.get(id(ancestor_node), 0) + 1
        incident[id(descendant_node)] = (
            incident.get(id(descendant_node), 0) + 1
        )
    for node in nodes:
        degree = incident.get(id(node), 0)
        if degree > 1:
            size = len(provider(node.tag))
            if size == 0:
                return 0.0
            product /= float(size) ** (degree - 1)
    return product


def estimate_twig_selectivity(
    provider: NodeSetProvider,
    pattern: TwigNode,
    estimator: "CardinalityGenerator | Estimator | str",
    workspace: Workspace | None = None,
) -> float:
    """Estimated fraction of root-tag elements with >= 1 embedding.

    Approximates ``P(>=1 embedding)`` per root element as
    ``min(1, embeddings / |S_root|)`` — exact when embeddings spread at
    most one per root, conservative otherwise.
    """
    root_size = len(provider(pattern.tag))
    if root_size == 0:
        raise EstimationError(
            f"twig root {pattern.tag!r} matches no elements"
        )
    embeddings = estimate_twig_size(provider, pattern, estimator, workspace)
    return min(1.0, embeddings / root_size)
