"""Plan-regret harness: how much does an estimator's plan really cost?

The paper motivates size estimation with join ordering; this module
closes that loop and measures it.  For each chain query we enumerate
*every* parenthesization, compute each plan's **true** cost (the sum of
its intermediate-result sizes, via exact chain joins), and score the
plan each cardinality generator picks against the best possible plan::

    regret = true_cost(chosen plan) / true_cost(optimal plan) - 1

A regret of 0 means the generator's estimates were good enough to pick
a true-cost-optimal plan; the exact-oracle generator achieves 0 by
construction on every chain, which anchors the scale.  The sweep runs
every registered estimator (wrapped as a generator), the pessimistic
upper-bound generator and the exact oracle over chain workloads on the
XMark, DBLP and XMach datasets, and its report is written as the
schema-validated ``BENCH_optimizer.json`` artifact and gated in CI.

The report is deterministic for fixed ``scale``/``seed``: generators
are constructed fresh per chain from seeded configurations, so neither
chain order nor repetition changes any number.
"""

from __future__ import annotations

import statistics
from typing import Any, Callable, Mapping, Sequence

from repro.core.nodeset import NodeSet
from repro.datasets.base import Dataset
from repro.datasets.dblp import generate_dblp
from repro.datasets.xmach import generate_xmach
from repro.datasets.xmark import generate_xmark
from repro.optimizer.chain import chain_join_size
from repro.optimizer.generator import CardinalityGenerator, resolve_generator
from repro.optimizer.planner import JoinPlan, optimize, plan_cost

__all__ = [
    "DEFAULT_CHAINS",
    "REGRET_SCHEMA_VERSION",
    "all_plans",
    "default_generator_specs",
    "optimal_true_cost",
    "regret_report",
    "true_plan_cost",
]

REGRET_SCHEMA_VERSION = 1

#: Chain workloads per dataset — adjacent pairs follow the Table 3
#: query edges, so every step is a real containment relationship.
DEFAULT_CHAINS: dict[str, tuple[tuple[str, ...], ...]] = {
    "xmark": (
        ("open_auction", "annotation", "text"),
        ("item", "desp", "text"),
        ("desp", "parlist", "listitem"),
        ("desp", "parlist", "listitem", "text"),
        ("item", "desp", "parlist", "listitem"),
    ),
    "dblp": (
        ("inproceeding", "title", "sup"),
        ("inproceeding", "cite", "label"),
    ),
    "xmach": (
        ("host", "path", "doc_info"),
        ("path", "doc_info", "doc_id"),
        ("chapter", "section", "paragraph"),
        ("section", "paragraph", "link"),
        ("chapter", "section", "paragraph", "link"),
    ),
}

_GENERATORS: dict[str, Callable[[float, int], Dataset]] = {
    "xmark": lambda scale, seed: generate_xmark(scale=scale, seed=seed),
    "dblp": lambda scale, seed: generate_dblp(scale=scale, seed=seed),
    "xmach": lambda scale, seed: generate_xmach(scale=scale, seed=seed),
}


def default_generator_specs(seed: int = 17) -> dict[str, dict[str, Any]]:
    """The sweep's generator lineup: name -> constructor configuration.

    All seven sampling estimators, both histogram families, the
    pessimistic upper bound and the exact oracle.  ``num_samples`` is a
    ceiling — the sweep clamps it per chain so without-replacement
    draws stay legal on small operands.
    """
    return {
        "PL": {"num_buckets": 16},
        "PH": {"num_cells": 8},
        "IM": {"num_samples": 100, "seed": seed},
        "PM": {"num_samples": 100, "seed": seed},
        "CROSS": {"num_samples": 100, "seed": seed},
        "SYS": {"num_samples": 100, "seed": seed},
        "BIFOCAL": {"num_samples": 100, "seed": seed},
        "SEMI-A": {"num_samples": 100, "seed": seed},
        "SEMI-D": {"num_samples": 100, "seed": seed},
        "UBOUND": {},
        "EXACT": {},
    }


def all_plans(lo: int, hi: int) -> list[JoinPlan]:
    """Every parenthesization of the segment ``lo..hi`` (sizes 0)."""
    if lo == hi:
        return [JoinPlan(lo, hi, 0.0)]
    plans = []
    for split in range(lo, hi):
        for left in all_plans(lo, split):
            for right in all_plans(split + 1, hi):
                plans.append(JoinPlan(lo, hi, 0.0, left, right))
    return plans


def true_plan_cost(
    plan: JoinPlan, node_sets: Sequence[NodeSet], is_root: bool = True
) -> int:
    """True cost of ``plan``: the sum of its intermediate-result sizes.

    Mirrors :func:`~repro.optimizer.planner.plan_cost` but with *exact*
    segment sizes; the root result is excluded for the same reason.
    """
    if plan.is_leaf:
        return 0
    assert plan.left is not None and plan.right is not None
    own = (
        0
        if is_root
        else chain_join_size(node_sets[plan.lo : plan.hi + 1])
    )
    return (
        own
        + true_plan_cost(plan.left, node_sets, False)
        + true_plan_cost(plan.right, node_sets, False)
    )


def optimal_true_cost(node_sets: Sequence[NodeSet]) -> int:
    """True cost of the best possible parenthesization."""
    return min(
        true_plan_cost(plan, node_sets)
        for plan in all_plans(0, len(node_sets) - 1)
    )


def _underestimated_segments(
    plan: JoinPlan, node_sets: Sequence[NodeSet]
) -> int:
    """Internal plan nodes whose estimated size is below the true size."""
    if plan.is_leaf:
        return 0
    assert plan.left is not None and plan.right is not None
    true_size = chain_join_size(node_sets[plan.lo : plan.hi + 1])
    own = 1 if plan.estimated_size + 1e-9 < true_size else 0
    return (
        own
        + _underestimated_segments(plan.left, node_sets)
        + _underestimated_segments(plan.right, node_sets)
    )


def _clamped(
    config: Mapping[str, Any], node_sets: Sequence[NodeSet]
) -> dict[str, Any]:
    """Clamp ``num_samples`` to the smallest operand of the chain."""
    adjusted = dict(config)
    if "num_samples" in adjusted:
        smallest = min(len(s) for s in node_sets)
        adjusted["num_samples"] = max(
            1, min(int(adjusted["num_samples"]), smallest // 2 or 1)
        )
    return adjusted


def regret_report(
    generator_specs: Mapping[str, Mapping[str, Any]] | None = None,
    *,
    scale: float = 0.05,
    seed: int = 101,
    datasets: Sequence[str] | None = None,
    chains: Mapping[str, Sequence[Sequence[str]]] | None = None,
) -> dict[str, Any]:
    """Sweep every generator through the planner; score plan regret.

    Args:
        generator_specs: name -> constructor config for
            :func:`~repro.optimizer.generator.resolve_generator`;
            defaults to :func:`default_generator_specs`.
        scale: dataset scale factor (0.05 = CI-sized documents).
        seed: dataset generator seed (also keys the report).
        datasets: subset of ``xmark``/``dblp``/``xmach``; default all.
        chains: chain workloads per dataset; default
            :data:`DEFAULT_CHAINS`.

    Returns the ``BENCH_optimizer.json`` payload (without timing — the
    caller stamps ``elapsed_s`` so the body stays deterministic).
    """
    specs = dict(
        generator_specs
        if generator_specs is not None
        else default_generator_specs()
    )
    chain_map = dict(chains if chains is not None else DEFAULT_CHAINS)
    names = list(datasets if datasets is not None else chain_map)

    chain_rows: list[dict[str, Any]] = []
    per_generator: dict[str, dict[str, Any]] = {
        name: {"regrets": [], "underestimated_segments": 0}
        for name in specs
    }
    describes: dict[str, dict[str, Any]] = {}

    for dataset_name in names:
        dataset = _GENERATORS[dataset_name](scale, seed)
        workspace = dataset.tree.workspace()
        for tags in chain_map[dataset_name]:
            node_sets = [dataset.node_set(tag) for tag in tags]
            optimal = optimal_true_cost(node_sets)
            row: dict[str, Any] = {
                "dataset": dataset_name,
                "tags": list(tags),
                "optimal_cost": optimal,
                "plans": {},
            }
            for gen_name, config in specs.items():
                generator = resolve_generator(
                    gen_name, **_clamped(config, node_sets)
                )
                plan = optimize(
                    node_sets, generator, workspace=workspace
                )
                describes.setdefault(gen_name, generator.describe())
                chosen = true_plan_cost(plan, node_sets)
                regret = (chosen / optimal - 1.0) if optimal else 0.0
                under = _underestimated_segments(plan, node_sets)
                per_generator[gen_name]["regrets"].append(regret)
                per_generator[gen_name]["underestimated_segments"] += under
                row["plans"][gen_name] = {
                    "plan": plan.describe(list(tags)),
                    "true_cost": chosen,
                    "estimated_cost": plan_cost(plan),
                    "regret": regret,
                    "underestimated_segments": under,
                }
            chain_rows.append(row)

    generators: dict[str, dict[str, Any]] = {}
    for gen_name, stats in per_generator.items():
        regrets = stats["regrets"]
        generators[gen_name] = {
            "describe": describes.get(gen_name, {}),
            "chains": len(regrets),
            "mean_regret": statistics.fmean(regrets) if regrets else 0.0,
            "max_regret": max(regrets, default=0.0),
            "optimal_plans": sum(1 for r in regrets if r == 0.0),
            "underestimated_segments": stats["underestimated_segments"],
        }

    return {
        "bench": "optimizer-regret",
        "schema_version": REGRET_SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "datasets": names,
        "generators": generators,
        "chains": chain_rows,
    }
