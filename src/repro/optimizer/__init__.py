"""Cost-based containment-join ordering — the paper's motivating use case.

The introduction's example: ``//paper[appendix/table]`` can be evaluated
as ``(paper ⋈ appendix) ⋈ table`` or ``paper ⋈ (appendix ⋈ table)``, and
the better order depends on the intermediate result sizes — which is what
the estimators of this package predict.  This module turns that example
into a small optimizer for chains of containment joins.
"""

from repro.optimizer.chain import chain_join_size
from repro.optimizer.planner import JoinPlan, optimize_chain, plan_cost
from repro.optimizer.twig import (
    TwigNode,
    estimate_twig_selectivity,
    estimate_twig_size,
    twig,
    twig_match_count,
    twig_semijoin_count,
)

__all__ = [
    "JoinPlan",
    "TwigNode",
    "chain_join_size",
    "estimate_twig_selectivity",
    "estimate_twig_size",
    "optimize_chain",
    "plan_cost",
    "twig",
    "twig_match_count",
    "twig_semijoin_count",
]
