"""Cost-based containment-join ordering — the paper's motivating use case.

The introduction's example: ``//paper[appendix/table]`` can be evaluated
as ``(paper ⋈ appendix) ⋈ table`` or ``paper ⋈ (appendix ⋈ table)``, and
the better order depends on the intermediate result sizes — which is what
the estimators of this package predict.  This module turns that example
into a small optimizer for chains of containment joins.

Cardinalities reach the planner through the pluggable
:class:`~repro.optimizer.generator.CardinalityGenerator` interface:
estimator-backed, service-backed, exact-oracle, or the pessimistic
upper-bound generator.  :func:`optimize` is the generator-native entry
point; :func:`optimize_chain` is the deprecated estimator shim.
"""

from repro.optimizer.chain import chain_join_size
from repro.optimizer.generator import (
    BoundGenerator,
    CardinalityGenerator,
    EstimatorGenerator,
    ExactGenerator,
    PairwiseGenerator,
    PlanningState,
    ServiceGenerator,
    as_generator,
    available_generators,
    resolve_generator,
)
from repro.optimizer.planner import (
    PLAN_SCHEMA_VERSION,
    JoinPlan,
    optimize,
    optimize_chain,
    plan_cost,
)
from repro.optimizer.twig import (
    TwigNode,
    estimate_twig_selectivity,
    estimate_twig_size,
    twig,
    twig_match_count,
    twig_semijoin_count,
)

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "BoundGenerator",
    "CardinalityGenerator",
    "EstimatorGenerator",
    "ExactGenerator",
    "JoinPlan",
    "PairwiseGenerator",
    "PlanningState",
    "ServiceGenerator",
    "TwigNode",
    "as_generator",
    "available_generators",
    "chain_join_size",
    "estimate_twig_selectivity",
    "estimate_twig_size",
    "optimize",
    "optimize_chain",
    "plan_cost",
    "resolve_generator",
    "twig",
    "twig_match_count",
    "twig_semijoin_count",
]
