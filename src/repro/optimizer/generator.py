"""Pluggable cardinality generation for the join-order planner.

The planner (:mod:`repro.optimizer.planner`) does not consume a bare
estimator any more — it consumes a :class:`CardinalityGenerator`: a
meta-strategy the enumerator calls for the size of any chain *segment*,
in the shape PostBOUND gives its ``JoinBoundCardinalityEstimator``
(setup / estimate / describe).  That indirection is what lets every
estimation path in the package drive planning through one interface:

* :class:`EstimatorGenerator` — any registered estimator (resolved
  through the alias-aware registry) estimates adjacent pairs, longer
  segments composed under the conventional independence assumption;
* :class:`ServiceGenerator` — pair estimates served by an
  :class:`~repro.service.engine.EstimationService`, deadline-aware:
  under pressure the planner gets the service's degraded answer instead
  of blocking the optimization pass;
* :class:`ExactGenerator` — exact segment sizes
  (:func:`~repro.optimizer.chain.chain_join_size`), the oracle baseline
  every other generator's *plan regret* is scored against;
* :class:`BoundGenerator` — a pessimistic upper-bound generator in the
  UES/AGM style: chain-segment sizes are guaranteed enclosures composed
  from measured per-step fan-out maxima
  (:func:`~repro.estimators.bounds.containment_fanout_bounds`), never
  the independence fan-out — so no plan it costs is ever built on an
  underestimate.

Generators are resolved by name through :func:`resolve_generator`
(case-insensitive, aliased, with the same nearest-match candidate lists
the estimator registry produces); every estimator name is accepted and
wraps itself in an :class:`EstimatorGenerator`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, ClassVar

from repro.core.errors import (
    PlanError,
    UnknownEstimatorError,
    UnknownGeneratorError,
)
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimator
from repro.estimators.bounds import (
    containment_fanout_bounds,
    refined_join_bound,
)
from repro.estimators.registry import (
    available_estimators,
    canonical_name,
    make_estimator,
    nearest_names,
)
from repro.feedback import runtime as _feedback
from repro.optimizer.chain import chain_join_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.catalog import StatisticsCatalog
    from repro.service.engine import EstimationService

__all__ = [
    "BoundGenerator",
    "CardinalityGenerator",
    "EstimatorGenerator",
    "ExactGenerator",
    "PairwiseGenerator",
    "PlanningState",
    "ServiceGenerator",
    "as_generator",
    "available_generators",
    "canonical_generator_name",
    "resolve_generator",
]


@dataclass
class PlanningState:
    """Everything one planning pass shares with its generator.

    Attributes:
        node_sets: the chain's leaves, outermost ancestor first.
        workspace: the shared position domain, or None to let each
            underlying estimator default per call (the historical
            planner behavior, preserved so adapter-wrapped estimators
            plan bit-identically to the legacy path).
        names: display names for the leaves (tag predicates).
        scratch: per-pass memo space; generators key their cached pair
            estimates and DP tables by ``id(self)`` so two generators
            sharing a state never collide.
    """

    node_sets: tuple[NodeSet, ...]
    workspace: Workspace | None = None
    names: tuple[str, ...] = ()
    scratch: dict[Any, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.node_sets = tuple(self.node_sets)
        if not self.names:
            # getattr: leaves are not validated here — pre_check owns
            # rejecting non-NodeSet leaves with a typed PlanError.
            self.names = tuple(
                getattr(s, "name", None) or f"s{i}"
                for i, s in enumerate(self.node_sets)
            )

    @property
    def size(self) -> int:
        return len(self.node_sets)


class CardinalityGenerator(abc.ABC):
    """The planner-facing estimation interface (a meta-strategy).

    The join enumerator calls :meth:`estimate_join` for the cardinality
    of the chain segment ``lo..hi`` (inclusive leaf indices) of the
    state's node sets.  How that number is produced — statistics,
    sampling, a service round-trip, an exact join, a provable bound —
    is entirely the generator's business.

    Lifecycle per planning pass: :meth:`setup_for_workload` once (with
    the shared workspace and an optional statistics catalog), then
    :meth:`pre_check` on the concrete state, then any number of
    ``estimate_join`` calls.  All three must be idempotent: the planner
    guarantees nothing about how often, or in which order relative to
    :meth:`describe`, they run.
    """

    #: Display name used in plans, reports and bench artifacts.
    name: ClassVar[str] = "?"

    def setup_for_workload(
        self,
        workspace: Workspace | None,
        catalog: "StatisticsCatalog | None" = None,
    ) -> None:
        """Prepare internal structures for a workload (optional hook)."""

    def pre_check(self, state: PlanningState) -> None:
        """Validate a concrete planning state (optional hook).

        The default rejects states whose leaves are not node sets;
        subclasses may add stricter contracts.  Raise
        :class:`~repro.core.errors.PlanError` to refuse the workload.
        """
        for index, node_set in enumerate(state.node_sets):
            if not isinstance(node_set, NodeSet):
                raise PlanError(
                    f"planning leaf {index} is not a NodeSet: "
                    f"{type(node_set).__name__}"
                )

    @abc.abstractmethod
    def estimate_join(
        self, lo: int, hi: int, state: PlanningState
    ) -> float:
        """Estimated cardinality of the chain segment ``lo..hi``.

        ``lo == hi`` is a leaf: its cardinality is exact by definition
        and every generator must return ``len(state.node_sets[lo])``.
        """

    def describe(self) -> dict[str, Any]:
        """JSON-safe self-description for reports and plan artifacts."""
        return {"generator": self.name, "kind": type(self).__name__}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class PairwiseGenerator(CardinalityGenerator):
    """Base for generators that natively estimate *adjacent pairs* only.

    Longer segments compose under the independence assumption the
    optimizer literature conventionally makes::

        size(i..j) = size(i..j-1) · size(j-1, j) / |s_{j-1}|

    which reproduces the historical planner arithmetic operation for
    operation — the backward-compat adapter plans bit-identically to
    the pre-generator code path.
    """

    @abc.abstractmethod
    def estimate_pair(self, index: int, state: PlanningState) -> float:
        """Estimated ``|s_index ⋈ s_index+1|`` (clamped to >= 0)."""

    def estimate_join(
        self, lo: int, hi: int, state: PlanningState
    ) -> float:
        if lo == hi:
            return float(len(state.node_sets[lo]))
        pairs = state.scratch.setdefault(("pairs", id(self)), {})
        segments = state.scratch.setdefault(("segments", id(self)), {})

        def pair(index: int) -> float:
            cached = pairs.get(index)
            if cached is None:
                cached = max(0.0, self.estimate_pair(index, state))
                pairs[index] = cached
            return cached

        def segment(i: int, j: int) -> float:
            if i == j:
                return float(len(state.node_sets[i]))
            if j == i + 1:
                return pair(i)
            cached = segments.get((i, j))
            if cached is None:
                previous = segment(i, j - 1)
                base = len(state.node_sets[j - 1])
                fanout = pair(j - 1) / base if base else 0.0
                cached = previous * fanout
                segments[(i, j)] = cached
            return cached

        return segment(lo, hi)


class EstimatorGenerator(PairwiseGenerator):
    """Adapter: any registered estimator drives the planner.

    Args:
        estimator: an :class:`~repro.estimators.base.Estimator`
            instance, or any name/alias the estimator registry resolves
            ("PL", "pl-histogram", "im-da", ...).
        **config: constructor arguments when ``estimator`` is a name
            (``num_buckets=``, ``num_samples=``, ``seed=``, ...);
            rejected when an instance is passed.
    """

    def __init__(self, estimator: Estimator | str, **config: Any) -> None:
        if isinstance(estimator, str):
            self.estimator = make_estimator(estimator, **config)
        else:
            if config:
                raise PlanError(
                    "EstimatorGenerator takes **config only with a "
                    f"method name, got an instance plus {sorted(config)}"
                )
            self.estimator = estimator
        self.name = self.estimator.name
        self._config = dict(config)

    def estimate_pair(self, index: int, state: PlanningState) -> float:
        return self.estimator.estimate(
            state.node_sets[index],
            state.node_sets[index + 1],
            state.workspace,
        ).value

    def describe(self) -> dict[str, Any]:
        return {
            "generator": self.name,
            "kind": type(self).__name__,
            "estimator": self.estimator.name,
            "config": {k: repr(v) for k, v in sorted(self._config.items())},
        }


class ServiceGenerator(PairwiseGenerator):
    """Pair estimates served by an :class:`EstimationService`.

    Every pair estimate is one service request — memoized, micro-batched
    and deadline-guarded by the service.  With ``deadline_s`` set the
    planner never stalls on a slow estimator: a request that cannot
    finish in time returns the service's degraded answer (catalog or
    structural bound) and the pass keeps moving.

    Args:
        service: the running service (``workers=0`` caller-runs mode
            works and is the embedded-optimizer shape).
        method: estimator name forwarded to the service.
        deadline_s: per-request deadline, or None for full fidelity.
        **config: estimator configuration forwarded with each request.
    """

    def __init__(
        self,
        service: "EstimationService",
        method: str = "PL",
        *,
        deadline_s: float | None = None,
        **config: Any,
    ) -> None:
        self.service = service
        self.method = canonical_name(method)
        self.deadline_s = deadline_s
        self.config = dict(config)
        self.name = f"SERVICE-{self.method}"
        self.requests = 0
        self.degraded = 0

    def estimate_pair(self, index: int, state: PlanningState) -> float:
        response = self.service.estimate(
            state.node_sets[index],
            state.node_sets[index + 1],
            self.method,
            workspace=state.workspace,
            deadline_s=self.deadline_s,
            **self.config,
        )
        self.requests += 1
        if response.status != "ok":
            self.degraded += 1
        return response.estimate.value

    def describe(self) -> dict[str, Any]:
        return {
            "generator": self.name,
            "kind": type(self).__name__,
            "method": self.method,
            "deadline_s": self.deadline_s,
            "requests": self.requests,
            "degraded": self.degraded,
            "config": {k: repr(v) for k, v in sorted(self.config.items())},
        }


class ExactGenerator(CardinalityGenerator):
    """The oracle: exact chain sizes for every segment.

    Planning with it yields the true-cardinality-optimal plan, so its
    plan regret is 0 by construction — the baseline the regret
    benchmark scores every other generator against.  Costs real joins
    at plan time; a baseline, not a production strategy.
    """

    name = "EXACT"

    def estimate_join(
        self, lo: int, hi: int, state: PlanningState
    ) -> float:
        if lo == hi:
            return float(len(state.node_sets[lo]))
        memo = state.scratch.setdefault(("exact", id(self)), {})
        cached = memo.get((lo, hi))
        if cached is None:
            cached = float(
                chain_join_size(state.node_sets[lo : hi + 1])
            )
            memo[(lo, hi)] = cached
            if hi == lo + 1 and _feedback.enabled():
                # An exact pair size is ground truth: feed it to the
                # ambient feedback store so every estimate recorded for
                # the same operand pair gains its error signal.
                _feedback.observe_truth(
                    state.node_sets[lo], state.node_sets[hi], cached
                )
        return cached


class BoundGenerator(CardinalityGenerator):
    """Pessimistic upper-bound generator (UES/AGM style).

    Composes *per-step* guarantees instead of independence fan-outs.
    With ``out(i)`` / ``in(i)`` the measured fan-out maxima of the
    adjacent pair ``(s_i, s_{i+1})``
    (:func:`~repro.estimators.bounds.containment_fanout_bounds`) the
    segment bound ``U`` is the tightest of the sound compositions::

        U(i,i)   = |s_i|
        U(i,i+1) = refined_join_bound(s_i, s_{i+1})
        U(i,j)   = min( U(i,j-1) · out(j-1),       extend right
                        U(i+1,j) · in(i),          extend left
                        min_k U(i,k) · U(k+1,j) )  AGM-style split

    Every composition bounds a sum of per-element fan-outs by its
    maximum (or a chain set by a cross product it embeds into), so
    ``U(i,j) >= |s_i ⋈ ... ⋈ s_j|`` holds for *any* data — the plans it
    costs can be conservative, never catastrophically underestimated.
    """

    name = "UBOUND"

    def estimate_join(
        self, lo: int, hi: int, state: PlanningState
    ) -> float:
        table = state.scratch.get(("ubound", id(self)))
        if table is None:
            table = self._build_table(state)
            state.scratch[("ubound", id(self))] = table
        return float(table[(lo, hi)])

    def _build_table(self, state: PlanningState) -> dict[tuple[int, int], int]:
        sets = state.node_sets
        k = len(sets)
        fan = [
            containment_fanout_bounds(sets[i], sets[i + 1])
            for i in range(k - 1)
        ]
        table: dict[tuple[int, int], int] = {
            (i, i): len(sets[i]) for i in range(k)
        }
        for i in range(k - 1):
            table[(i, i + 1)] = refined_join_bound(sets[i], sets[i + 1])
        for length in range(3, k + 1):
            for i in range(k - length + 1):
                j = i + length - 1
                best = min(
                    table[(i, j - 1)] * fan[j - 1].max_fanout,
                    table[(i + 1, j)] * fan[i].max_fanin,
                )
                for split in range(i, j):
                    best = min(
                        best, table[(i, split)] * table[(split + 1, j)]
                    )
                table[(i, j)] = best
        return table

    def describe(self) -> dict[str, Any]:
        return {
            "generator": self.name,
            "kind": type(self).__name__,
            "style": "pessimistic-upper-bound",
            "compositions": ["fanout", "fanin", "split"],
        }


# ----------------------------------------------------------------------
# Name resolution
# ----------------------------------------------------------------------

_GENERATORS: dict[str, Callable[..., CardinalityGenerator]] = {
    "EXACT": ExactGenerator,
    "UBOUND": BoundGenerator,
}

#: Longer / paper-style generator names accepted as synonyms (uppercased).
_GENERATOR_ALIASES: dict[str, str] = {
    "ORACLE": "EXACT",
    "EXACT-ORACLE": "EXACT",
    "TRUE": "EXACT",
    "BOUND": "UBOUND",
    "UPPER-BOUND": "UBOUND",
    "PESSIMISTIC": "UBOUND",
    "UES": "UBOUND",
    "AGM": "UBOUND",
}


def available_generators() -> list[str]:
    """Canonical names accepted by :func:`resolve_generator`.

    The native generator names plus every estimator registry name (each
    of which resolves to an :class:`EstimatorGenerator`).
    """
    return sorted({*_GENERATORS, *available_estimators()})


def canonical_generator_name(name: str) -> str:
    """Resolve any accepted spelling to a canonical generator name.

    Estimator names and aliases are accepted and resolve to their
    canonical estimator name.  Unknown names raise
    :class:`~repro.core.errors.UnknownGeneratorError` listing every
    available name plus the closest candidates from *both* pools, the
    same contract :func:`repro.estimators.registry.canonical_name`
    gives for estimators.
    """
    key = name.strip().upper()
    key = _GENERATOR_ALIASES.get(key, key)
    if key in _GENERATORS:
        return key
    try:
        return canonical_name(key)
    except UnknownEstimatorError:
        pass
    candidates = nearest_names(
        name,
        available_generators(),
        {**_GENERATOR_ALIASES},
    )
    if not candidates:
        hint = ""
    elif len(candidates) == 1:
        hint = f"; did you mean {candidates[0]!r}?"
    else:
        listed = ", ".join(repr(c) for c in candidates[:-1])
        hint = f"; did you mean {listed} or {candidates[-1]!r}?"
    raise UnknownGeneratorError(
        name,
        candidates,
        f"unknown cardinality generator {name!r}; available: "
        f"{', '.join(available_generators())}{hint}",
    )


def resolve_generator(name: str, **config: Any) -> CardinalityGenerator:
    """Instantiate a cardinality generator by name or alias (any case).

    >>> resolve_generator("exact").name
    'EXACT'
    >>> resolve_generator("pessimistic").name
    'UBOUND'
    >>> resolve_generator("pl-histogram", num_buckets=20).name
    'PL'
    """
    canonical = canonical_generator_name(name)
    factory = _GENERATORS.get(canonical)
    if factory is not None:
        return factory(**config)
    return EstimatorGenerator(canonical, **config)


def as_generator(
    source: "CardinalityGenerator | Estimator | str", **config: Any
) -> CardinalityGenerator:
    """Coerce any accepted estimation source into a generator.

    Accepts a generator (returned as-is), an estimator instance
    (wrapped in an :class:`EstimatorGenerator`), or a name resolved by
    :func:`resolve_generator`.
    """
    if isinstance(source, CardinalityGenerator):
        if config:
            raise PlanError(
                "generator configuration must be passed to the "
                f"generator's constructor, got extra {sorted(config)}"
            )
        return source
    if isinstance(source, str):
        return resolve_generator(source, **config)
    if isinstance(source, Estimator) or hasattr(source, "estimate"):
        return EstimatorGenerator(source, **config)
    raise PlanError(
        "expected a CardinalityGenerator, an Estimator or a generator "
        f"name, got {type(source).__name__}"
    )
